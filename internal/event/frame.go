package event

import "encoding/binary"

// ttlOffset is the fixed position of the TTL byte in the wire layout
// (magic, version, kind, then TTL — see AppendMarshal).
const ttlOffset = 3

// Frame is an immutable, pre-encoded wire representation of one event.
// A broker fanning an event out to many sessions encodes it once into a
// Frame and shares the Frame across every outbound queue; per-hop TTL
// rewrites are a one-byte header patch on a fresh copy (WithTTL) instead
// of a full re-marshal or per-peer Clone.
//
// The byte slice returned by Bytes must never be mutated: it is shared
// concurrently by every session the frame was fanned out to.
type Frame struct {
	b []byte
}

// NewFrame encodes e into a frame. The event must not be mutated while
// the frame is in flight (the frame captures its current encoding).
func NewFrame(e *Event) *Frame {
	return &Frame{b: Marshal(e)}
}

// FrameFromBytes wraps an already-encoded event. The caller must not
// mutate b afterwards.
func FrameFromBytes(b []byte) *Frame { return &Frame{b: b} }

// Bytes returns the encoded event. Callers must treat it as read-only.
func (f *Frame) Bytes() []byte { return f.b }

// Len returns the encoded length in bytes.
func (f *Frame) Len() int { return len(f.b) }

// TTL returns the hop budget encoded in the frame header.
func (f *Frame) TTL() uint8 { return f.b[ttlOffset] }

// WithTTL returns a frame identical to f except for the TTL header byte.
// If the TTL already matches, f itself is returned; otherwise the frame
// buffer is copied once — a single memmove shared by all downstream
// consumers, which is what makes broker TTL decrement cheap.
func (f *Frame) WithTTL(ttl uint8) *Frame {
	if f.b[ttlOffset] == ttl {
		return f
	}
	b := make([]byte, len(f.b))
	copy(b, f.b)
	b[ttlOffset] = ttl
	return &Frame{b: b}
}

// Decode unmarshals the frame back into an event. The returned event's
// payload aliases the frame buffer and must not be mutated.
func (f *Frame) Decode() (*Event, error) { return Unmarshal(f.b) }

// flagsOffset is the fixed position of the flags byte in the wire layout
// (magic, version, kind, ttl, flags — see AppendMarshal).
const flagsOffset = 4

// NewFrameWithRSeqSlot encodes e with a trailing patchable rseq field
// (the placeholder value is irrelevant — WithRSeq stamps the real one).
// A broker fanning a reliable event out encodes this slot frame once and
// derives one 8-byte-patched copy per target, which is what extends the
// encode-once fan-out path to the reliable/control plane.
func NewFrameWithRSeqSlot(e *Event) *Frame {
	if e.RSeq != 0 {
		return &Frame{b: Marshal(e)}
	}
	c := *e
	c.RSeq = ^uint64(0) // placeholder; always overwritten by WithRSeq
	return &Frame{b: Marshal(&c)}
}

// HasRSeqSlot reports whether the frame carries a trailing rseq field.
func (f *Frame) HasRSeqSlot() bool { return f.b[flagsOffset]&flagRSeq != 0 }

// RSeq returns the trailing reliable sequence number, 0 when absent.
func (f *Frame) RSeq() uint64 {
	if !f.HasRSeqSlot() {
		return 0
	}
	return binary.BigEndian.Uint64(f.b[len(f.b)-8:])
}

// WithRSeq returns a frame identical to f except for the trailing rseq
// field, which must be present (NewFrameWithRSeqSlot). The buffer is
// copied once and 8 bytes are patched — no re-marshal, no header-map
// clone — so per-target reliable tagging is a memmove, not an encode.
func (f *Frame) WithRSeq(rseq uint64) *Frame {
	if !f.HasRSeqSlot() {
		panic("event: WithRSeq on a frame without an rseq slot")
	}
	b := make([]byte, len(f.b))
	copy(b, f.b)
	binary.BigEndian.PutUint64(b[len(b)-8:], rseq)
	return &Frame{b: b}
}

// HasMaskSlot reports whether the frame carries a mesh serve-mask field.
func (f *Frame) HasMaskSlot() bool { return f.b[flagsOffset]&flagMask != 0 }

// maskOffset returns the byte offset of the mask field, which sits at the
// end of the frame except when an rseq field follows it.
func (f *Frame) maskOffset() int {
	off := len(f.b) - 8
	if f.b[flagsOffset]&flagRSeq != 0 {
		off -= 8
	}
	return off
}

// Mask returns the mesh serve-mask, 0 when absent.
func (f *Frame) Mask() uint64 {
	if !f.HasMaskSlot() {
		return 0
	}
	return binary.BigEndian.Uint64(f.b[f.maskOffset():])
}

// WithMask returns a frame identical to f except for the mesh serve-mask
// field, which must be present (encode the event with a non-zero Mask).
// If the mask already matches, f itself is returned; otherwise the buffer
// is copied once and 8 bytes are patched, so staging one forwarded copy
// per mesh link is a memmove per link, not an encode per link.
func (f *Frame) WithMask(mask uint64) *Frame {
	if !f.HasMaskSlot() {
		panic("event: WithMask on a frame without a mask slot")
	}
	off := f.maskOffset()
	if binary.BigEndian.Uint64(f.b[off:]) == mask {
		return f
	}
	b := make([]byte, len(f.b))
	copy(b, f.b)
	binary.BigEndian.PutUint64(b[off:], mask)
	return &Frame{b: b}
}
