package event

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// Wire-format limits. They bound memory allocated while decoding input
// from untrusted connections.
const (
	// MaxTopicLen bounds the topic string on the wire.
	MaxTopicLen = 512
	// MaxSourceLen bounds the source identifier on the wire.
	MaxSourceLen = 256
	// MaxHeaders bounds the number of header pairs.
	MaxHeaders = 32
	// MaxHeaderStrLen bounds each header key or value.
	MaxHeaderStrLen = 1024
	// MaxPayloadLen bounds the payload (64 KiB fits a UDP datagram budget
	// comfortably above any RTP packet we generate).
	MaxPayloadLen = 1 << 20
	// MaxWireLen bounds a whole encoded event.
	MaxWireLen = MaxPayloadLen + MaxTopicLen + MaxSourceLen +
		MaxHeaders*(2*MaxHeaderStrLen+4) + 64
)

// wireMagic guards against framing desync; wireVersion allows evolution.
const (
	wireMagic   = 0xE5
	wireVersion = 1
)

// Codec errors.
var (
	ErrTruncated  = errors.New("event: truncated wire data")
	ErrBadMagic   = errors.New("event: bad magic byte")
	ErrBadVersion = errors.New("event: unsupported wire version")
)

// flag bits in the header byte.
const (
	flagReliable = 1 << 0
	flagHeaders  = 1 << 1
	// flagRSeq marks an encoding that ends with a fixed 8-byte big-endian
	// reliable sequence number after the payload. Keeping the field at a
	// fixed trailing offset is what lets Frame.WithRSeq patch it per
	// delivery target without re-marshalling.
	flagRSeq = 1 << 2
	// flagMask marks an encoding carrying a fixed 8-byte big-endian mesh
	// serve-mask after the payload (before the rseq field when both are
	// present). The fixed offset from the end lets Frame.WithMask patch
	// the mask per mesh link without re-marshalling.
	flagMask = 1 << 3
)

// AppendMarshal appends the wire encoding of e to dst and returns the
// extended slice. The layout is:
//
//	magic(1) version(1) kind(1) ttl(1) flags(1)
//	id(8) timestamp(8)
//	sourceLen(varint) source
//	topicLen(varint) topic
//	[nHeaders(varint) (kLen k vLen v)*]
//	payloadLen(varint) payload
//	[mask(8)]
//	[rseq(8)]
//
// The trailing mask and rseq fields are emitted only when e.Mask != 0 /
// e.RSeq != 0; their fixed positions relative to the end of the frame
// make per-target rewrites an 8-byte patch (see Frame.WithRSeq and
// Frame.WithMask).
func AppendMarshal(dst []byte, e *Event) []byte {
	marshalCalls.Add(1)
	var flags byte
	if e.Reliable {
		flags |= flagReliable
	}
	if len(e.Headers) > 0 {
		flags |= flagHeaders
	}
	if e.RSeq != 0 {
		flags |= flagRSeq
	}
	if e.Mask != 0 {
		flags |= flagMask
	}
	dst = append(dst, wireMagic, wireVersion, byte(e.Kind), e.TTL, flags)
	dst = binary.BigEndian.AppendUint64(dst, e.ID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.Timestamp))
	dst = appendString(dst, e.Source)
	dst = appendString(dst, e.Topic)
	if flags&flagHeaders != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(e.Headers)))
		for k, v := range e.Headers {
			dst = appendString(dst, k)
			dst = appendString(dst, v)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.Payload)))
	dst = append(dst, e.Payload...)
	if flags&flagMask != 0 {
		dst = binary.BigEndian.AppendUint64(dst, e.Mask)
	}
	if flags&flagRSeq != 0 {
		dst = binary.BigEndian.AppendUint64(dst, e.RSeq)
	}
	return dst
}

// marshalCalls counts AppendMarshal invocations. It backs the broker's
// encode-once regression tests, which assert that fanning a reliable
// event out to K targets performs O(1) marshals.
var marshalCalls atomic.Uint64

// MarshalCalls returns the process-wide number of AppendMarshal calls.
// Test instrumentation: take a delta around the operation under test.
func MarshalCalls() uint64 { return marshalCalls.Load() }

// Marshal returns the wire encoding of e.
func Marshal(e *Event) []byte {
	return AppendMarshal(make([]byte, 0, 64+len(e.Topic)+len(e.Source)+len(e.Payload)), e)
}

// Unmarshal decodes one event from b, which must contain exactly one
// encoded event. The returned event's Payload aliases b; callers that
// retain the event beyond the life of b must Clone it.
func Unmarshal(b []byte) (*Event, error) {
	return UnmarshalIntern(b, nil)
}

// Interner caches the most recent topic and source strings a decoder
// produced, so a stream of events on the same topic (the common case for
// media fan-in) allocates each string once instead of per event. The
// zero value is ready. Not safe for concurrent use — one per decoding
// goroutine.
type Interner struct {
	topic, source string
}

func (in *Interner) internTopic(b []byte) string {
	// string(b) in a comparison does not allocate.
	if string(b) == in.topic {
		return in.topic
	}
	in.topic = string(b)
	return in.topic
}

func (in *Interner) internSource(b []byte) string {
	if string(b) == in.source {
		return in.source
	}
	in.source = string(b)
	return in.source
}

// UnmarshalIntern is Unmarshal with string interning through in (which
// may be nil).
func UnmarshalIntern(b []byte, in *Interner) (*Event, error) {
	e, rest, err := consume(b, in)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("event: %d trailing bytes after event", len(rest))
	}
	return e, nil
}

// consume decodes one event from the front of b and returns the remainder.
func consume(b []byte, in *Interner) (*Event, []byte, error) {
	if len(b) < 21 {
		return nil, nil, ErrTruncated
	}
	if b[0] != wireMagic {
		return nil, nil, ErrBadMagic
	}
	if b[1] != wireVersion {
		return nil, nil, ErrBadVersion
	}
	e := &Event{
		Kind: Kind(b[2]),
		TTL:  b[3],
	}
	flags := b[4]
	e.Reliable = flags&flagReliable != 0
	e.ID = binary.BigEndian.Uint64(b[5:13])
	e.Timestamp = int64(binary.BigEndian.Uint64(b[13:21]))
	b = b[21:]

	var err error
	var raw []byte
	if raw, b, err = readBytes(b, MaxSourceLen, "source"); err != nil {
		return nil, nil, err
	}
	if in != nil {
		e.Source = in.internSource(raw)
	} else {
		e.Source = string(raw)
	}
	if raw, b, err = readBytes(b, MaxTopicLen, "topic"); err != nil {
		return nil, nil, err
	}
	if in != nil {
		e.Topic = in.internTopic(raw)
	} else {
		e.Topic = string(raw)
	}
	if flags&flagHeaders != 0 {
		n, rest, err := readUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		if n > MaxHeaders {
			return nil, nil, fmt.Errorf("event: %d headers exceed %d", n, MaxHeaders)
		}
		b = rest
		e.Headers = make(map[string]string, n)
		for range n {
			var k, v string
			if k, b, err = readString(b, MaxHeaderStrLen, "header key"); err != nil {
				return nil, nil, err
			}
			if v, b, err = readString(b, MaxHeaderStrLen, "header value"); err != nil {
				return nil, nil, err
			}
			e.Headers[k] = v
		}
	}
	plen, rest, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if plen > MaxPayloadLen {
		return nil, nil, fmt.Errorf("event: payload length %d exceeds %d", plen, MaxPayloadLen)
	}
	b = rest
	if uint64(len(b)) < plen {
		return nil, nil, ErrTruncated
	}
	if plen > 0 {
		e.Payload = b[:plen:plen]
	}
	b = b[plen:]
	if flags&flagMask != 0 {
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("event: reading mask: %w", ErrTruncated)
		}
		e.Mask = binary.BigEndian.Uint64(b[:8])
		b = b[8:]
	}
	if flags&flagRSeq != 0 {
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("event: reading rseq: %w", ErrTruncated)
		}
		e.RSeq = binary.BigEndian.Uint64(b[:8])
		b = b[8:]
	}
	if !e.Kind.Valid() {
		return nil, nil, fmt.Errorf("event: invalid kind %d on wire", e.Kind)
	}
	return e, b, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return v, b[n:], nil
}

func readString(b []byte, maxLen int, what string) (string, []byte, error) {
	raw, rest, err := readBytes(b, maxLen, what)
	if err != nil {
		return "", nil, err
	}
	return string(raw), rest, nil
}

// readBytes returns the length-prefixed byte run without copying; the
// result aliases b.
func readBytes(b []byte, maxLen int, what string) ([]byte, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return nil, nil, fmt.Errorf("event: reading %s length: %w", what, err)
	}
	if n > uint64(maxLen) {
		return nil, nil, fmt.Errorf("event: %s length %d exceeds %d", what, n, maxLen)
	}
	if uint64(len(rest)) < n {
		return nil, nil, fmt.Errorf("event: reading %s: %w", what, ErrTruncated)
	}
	return rest[:n], rest[n:], nil
}
