// Package event defines the NaradaBrokering-style event that all
// Global-MMCS traffic — RTP media, XGSP signalling, chat, presence — is
// wrapped in while it transits the broker network, together with a compact
// binary wire codec.
package event

import (
	"errors"
	"fmt"
	"time"
)

// Kind classifies the payload so edges can dispatch without inspecting it.
type Kind uint8

// Event kinds. Enums start at 1 so the zero value is invalid and cannot be
// confused with a real kind.
const (
	KindData     Kind = iota + 1 // opaque application payload
	KindRTP                      // payload is a marshalled RTP packet
	KindRTCP                     // payload is a marshalled RTCP compound packet
	KindControl                  // XGSP signalling XML
	KindChat                     // instant-messaging XML
	KindPresence                 // presence update XML
	kindMax
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindRTP:
		return "rtp"
	case KindRTCP:
		return "rtcp"
	case KindControl:
		return "control"
	case KindChat:
		return "chat"
	case KindPresence:
		return "presence"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k >= KindData && k < kindMax }

// DefaultTTL is the hop budget given to events that do not set one.
// It bounds flooding in peer-to-peer routing mode.
const DefaultTTL = 16

// Event is one unit of traffic in the broker network.
type Event struct {
	// ID is unique per Source; together (Source, ID) identify the event
	// for duplicate suppression in peer-to-peer routing.
	ID uint64
	// Source identifies the publishing client or broker.
	Source string
	// Topic is the hierarchical destination topic, e.g.
	// "/xgsp/session/42/video".
	Topic string
	// Kind classifies the payload.
	Kind Kind
	// TTL is the remaining hop budget; brokers decrement it on forward.
	TTL uint8
	// Reliable marks the event for the reliable delivery profile
	// (acknowledged, retransmitted); media events leave it false.
	Reliable bool
	// Timestamp is the publish wall-clock time in nanoseconds since the
	// Unix epoch. Receivers co-located with the sender use it for one-way
	// delay measurement.
	Timestamp int64
	// Headers carries optional string metadata (kept small on purpose).
	Headers map[string]string
	// Payload is the application data.
	Payload []byte
	// RSeq is the hop-by-hop reliable delivery sequence number, 0 when
	// the event is not rseq-tagged. It rides a fixed trailing field of
	// the wire encoding, so a broker fanning a reliable event out to many
	// sessions patches 8 bytes per target (Frame.WithRSeq) instead of
	// cloning and re-marshalling per target.
	RSeq uint64
	// Mask is the mesh serve-mask: on a copy forwarded between brokers it
	// names (as hashed origin bits) which downstream subscriber origins
	// this copy is responsible for, so routed dissemination follows one
	// spanning tree instead of every equal-cost path. 0 — the value on
	// all client-facing traffic — means unconstrained (serve every
	// matching origin). Like RSeq it rides a fixed trailing wire field,
	// so per-link re-masking is an 8-byte patch (Frame.WithMask), not a
	// re-marshal.
	Mask uint64
}

// New returns an event for topic with the given kind and payload,
// stamped with the current time and the default TTL. ID/Source are
// assigned by the publishing client.
func New(topic string, kind Kind, payload []byte) *Event {
	return &Event{
		Topic:     topic,
		Kind:      kind,
		TTL:       DefaultTTL,
		Timestamp: time.Now().UnixNano(),
		Payload:   payload,
	}
}

// Key identifies an event globally for duplicate suppression.
type Key struct {
	Source string
	ID     uint64
}

// Key returns the event's global identity.
func (e *Event) Key() Key { return Key{Source: e.Source, ID: e.ID} }

// Age returns the time elapsed since the event was published, relative
// to now (in nanoseconds since the Unix epoch).
func (e *Event) Age(nowNanos int64) time.Duration {
	return time.Duration(nowNanos - e.Timestamp)
}

// Clone returns a deep copy; brokers forward events by reference, so an
// edge that must mutate (e.g. a gateway rewriting headers) clones first.
func (e *Event) Clone() *Event {
	c := *e
	if e.Headers != nil {
		c.Headers = make(map[string]string, len(e.Headers))
		for k, v := range e.Headers {
			c.Headers[k] = v
		}
	}
	if e.Payload != nil {
		c.Payload = make([]byte, len(e.Payload))
		copy(c.Payload, e.Payload)
	}
	return &c
}

// Validate reports structural problems that should stop an event at the
// edge of the system.
func (e *Event) Validate() error {
	switch {
	case e.Topic == "":
		return errors.New("event: empty topic")
	case !e.Kind.Valid():
		return fmt.Errorf("event: invalid kind %d", e.Kind)
	case len(e.Topic) > MaxTopicLen:
		return fmt.Errorf("event: topic length %d exceeds %d", len(e.Topic), MaxTopicLen)
	case len(e.Payload) > MaxPayloadLen:
		return fmt.Errorf("event: payload length %d exceeds %d", len(e.Payload), MaxPayloadLen)
	case len(e.Headers) > MaxHeaders:
		return fmt.Errorf("event: %d headers exceed %d", len(e.Headers), MaxHeaders)
	}
	return nil
}

// String renders a short description for logs.
func (e *Event) String() string {
	return fmt.Sprintf("event{%s #%d %s %s %dB ttl=%d}",
		e.Source, e.ID, e.Kind, e.Topic, len(e.Payload), e.TTL)
}
