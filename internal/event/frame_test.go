package event

import (
	"bytes"
	"testing"
)

func frameEvent() *Event {
	e := New("/media/video/42", KindRTP, []byte("payload-bytes"))
	e.Source = "client-7"
	e.ID = 99
	e.Headers = map[string]string{"k": "v"}
	return e
}

func TestFrameRoundTrip(t *testing.T) {
	e := frameEvent()
	f := NewFrame(e)
	if f.Len() != len(Marshal(e)) {
		t.Fatalf("frame len %d != marshal len %d", f.Len(), len(Marshal(e)))
	}
	got, err := f.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != e.Topic || got.ID != e.ID || got.Source != e.Source ||
		got.TTL != e.TTL || !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("decode mismatch: %+v vs %+v", got, e)
	}
}

func TestFrameTTLPatch(t *testing.T) {
	e := frameEvent()
	e.TTL = 9
	f := NewFrame(e)
	if f.TTL() != 9 {
		t.Fatalf("TTL() = %d, want 9", f.TTL())
	}
	g := f.WithTTL(8)
	if g == f {
		t.Fatal("WithTTL with a different TTL must copy")
	}
	if g.TTL() != 8 || f.TTL() != 9 {
		t.Fatalf("patch leaked: g=%d f=%d", g.TTL(), f.TTL())
	}
	// Everything except the TTL byte is identical.
	ge, err := g.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if ge.TTL != 8 || ge.Topic != e.Topic || !bytes.Equal(ge.Payload, e.Payload) {
		t.Fatalf("patched frame decode mismatch: %+v", ge)
	}
	// Same TTL returns the identical frame (no copy).
	if f.WithTTL(9) != f {
		t.Fatal("WithTTL with the same TTL should return the receiver")
	}
}

func TestRSeqWireRoundTrip(t *testing.T) {
	e := frameEvent()
	e.Reliable = true
	e.RSeq = 0xDEADBEEFCAFE
	got, err := Unmarshal(Marshal(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.RSeq != e.RSeq {
		t.Fatalf("RSeq = %d, want %d", got.RSeq, e.RSeq)
	}
	if got.Topic != e.Topic || !bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("decode mismatch: %+v vs %+v", got, e)
	}
	// Absent RSeq costs nothing on the wire and decodes to 0.
	e.RSeq = 0
	got, err = Unmarshal(Marshal(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.RSeq != 0 {
		t.Fatalf("untagged event decoded RSeq %d", got.RSeq)
	}
}

func TestFrameRSeqPatch(t *testing.T) {
	e := frameEvent()
	e.Reliable = true
	f := NewFrameWithRSeqSlot(e)
	if !f.HasRSeqSlot() {
		t.Fatal("slot frame has no rseq slot")
	}
	before := MarshalCalls()
	a := f.WithRSeq(7)
	b := f.WithRSeq(8)
	if d := MarshalCalls() - before; d != 0 {
		t.Fatalf("WithRSeq marshalled %d times, want 0", d)
	}
	for want, g := range map[uint64]*Frame{7: a, 8: b} {
		if g.RSeq() != want {
			t.Fatalf("RSeq() = %d, want %d", g.RSeq(), want)
		}
		ge, err := g.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if ge.RSeq != want || ge.Topic != e.Topic || !bytes.Equal(ge.Payload, e.Payload) {
			t.Fatalf("patched decode mismatch: %+v", ge)
		}
	}
	// Frames without the slot refuse the patch loudly.
	plain := NewFrame(frameEvent())
	defer func() {
		if recover() == nil {
			t.Fatal("WithRSeq on a slot-less frame did not panic")
		}
	}()
	plain.WithRSeq(1)
}

func TestRSeqTruncatedTail(t *testing.T) {
	e := frameEvent()
	e.RSeq = 42
	raw := Marshal(e)
	if _, err := Unmarshal(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated rseq tail decoded without error")
	}
}

func TestFrameFromBytes(t *testing.T) {
	e := frameEvent()
	raw := Marshal(e)
	f := FrameFromBytes(raw)
	if !bytes.Equal(f.Bytes(), raw) {
		t.Fatal("FrameFromBytes must wrap the given bytes")
	}
	if f.TTL() != e.TTL {
		t.Fatalf("TTL = %d, want %d", f.TTL(), e.TTL)
	}
}

func TestMaskWireRoundTrip(t *testing.T) {
	e := frameEvent()
	e.Mask = 0x8000000000000001
	got, err := Unmarshal(Marshal(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mask != e.Mask {
		t.Fatalf("Mask = %#x, want %#x", got.Mask, e.Mask)
	}
	// Mask and trailing rseq coexist: mask sits before the rseq tail.
	e.Reliable = true
	e.RSeq = 0xCAFE
	got, err = Unmarshal(Marshal(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Mask != e.Mask || got.RSeq != e.RSeq {
		t.Fatalf("mask+rseq decode: mask %#x rseq %#x, want %#x %#x",
			got.Mask, got.RSeq, e.Mask, e.RSeq)
	}
	// An unconstrained (zero) mask costs nothing on the wire.
	e.Mask, e.Reliable, e.RSeq = 0, false, 0
	if got, err = Unmarshal(Marshal(e)); err != nil || got.Mask != 0 {
		t.Fatalf("zero-mask decode: %v mask %#x", err, got.Mask)
	}
}

func TestFrameMaskPatch(t *testing.T) {
	e := frameEvent()
	e.Mask = ^uint64(0) // placeholder: encode the slot, patch per link
	f := NewFrame(e)
	if !f.HasMaskSlot() {
		t.Fatal("masked frame has no mask slot")
	}
	before := MarshalCalls()
	a := f.WithMask(0b101)
	if d := MarshalCalls() - before; d != 0 {
		t.Fatalf("WithMask marshalled %d times, want 0", d)
	}
	if a.Mask() != 0b101 || f.Mask() != ^uint64(0) {
		t.Fatalf("patch leaked: a=%#x f=%#x", a.Mask(), f.Mask())
	}
	ae, err := a.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if ae.Mask != 0b101 || ae.Topic != e.Topic || !bytes.Equal(ae.Payload, e.Payload) {
		t.Fatalf("patched decode mismatch: %+v", ae)
	}
	if f.WithMask(^uint64(0)) != f {
		t.Fatal("WithMask with the same mask should return the receiver")
	}

	// With a trailing rseq slot, the mask patch lands before the rseq
	// bytes and WithRSeq still patches the tail.
	e.Reliable = true
	rf := NewFrameWithRSeqSlot(e)
	g := rf.WithMask(7).WithRSeq(42)
	ge, err := g.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if ge.Mask != 7 || ge.RSeq != 42 {
		t.Fatalf("mask+rseq patch: mask %#x rseq %d, want 7 42", ge.Mask, ge.RSeq)
	}

	// Frames without the slot refuse the patch loudly.
	plain := NewFrame(frameEvent())
	defer func() {
		if recover() == nil {
			t.Fatal("WithMask on a slot-less frame did not panic")
		}
	}()
	plain.WithMask(1)
}
