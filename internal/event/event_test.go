package event

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() *Event {
	return &Event{
		ID:        42,
		Source:    "client-7",
		Topic:     "/xgsp/session/9/video",
		Kind:      KindRTP,
		TTL:       8,
		Reliable:  true,
		Timestamp: 1234567890123,
		Headers:   map[string]string{"codec": "h261", "ssrc": "beef"},
		Payload:   []byte("payload bytes"),
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindData:     "data",
		KindRTP:      "rtp",
		KindRTCP:     "rtcp",
		KindControl:  "control",
		KindChat:     "chat",
		KindPresence: "presence",
		Kind(99):     "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindValid(t *testing.T) {
	if Kind(0).Valid() {
		t.Error("zero kind must be invalid")
	}
	if !KindChat.Valid() {
		t.Error("KindChat must be valid")
	}
	if kindMax.Valid() {
		t.Error("kindMax must be invalid")
	}
}

func TestNewDefaults(t *testing.T) {
	before := time.Now().UnixNano()
	e := New("/t", KindData, []byte("x"))
	if e.TTL != DefaultTTL {
		t.Errorf("TTL = %d, want %d", e.TTL, DefaultTTL)
	}
	if e.Timestamp < before {
		t.Error("timestamp not stamped")
	}
	if e.Topic != "/t" || e.Kind != KindData {
		t.Error("fields not set")
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	e := sample()
	b := Marshal(e)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestMarshalRoundtripMinimal(t *testing.T) {
	e := &Event{Topic: "/a", Kind: KindData}
	got, err := Unmarshal(Marshal(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != "/a" || got.Kind != KindData || got.Headers != nil || got.Payload != nil {
		t.Fatalf("minimal roundtrip mismatch: %+v", got)
	}
}

func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	b := Marshal(sample())
	b = append(b, 0xFF)
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("expected error for trailing bytes")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	b := Marshal(sample())
	for _, n := range []int{0, 1, 5, 10, 20, len(b) / 2, len(b) - 1} {
		if _, err := Unmarshal(b[:n]); err == nil {
			t.Errorf("Unmarshal of %d-byte prefix succeeded, want error", n)
		}
	}
}

func TestUnmarshalBadMagicAndVersion(t *testing.T) {
	b := Marshal(sample())
	bad := bytes.Clone(b)
	bad[0] = 0x00
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic error = %v, want ErrBadMagic", err)
	}
	bad = bytes.Clone(b)
	bad[1] = 99
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version error = %v, want ErrBadVersion", err)
	}
}

func TestUnmarshalRejectsInvalidKind(t *testing.T) {
	b := Marshal(sample())
	b[2] = 200
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("expected error for invalid kind")
	}
}

func TestUnmarshalRejectsOversizedTopic(t *testing.T) {
	e := sample()
	e.Headers = nil
	e.Topic = strings.Repeat("x", MaxTopicLen+1)
	b := Marshal(e)
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("expected error for oversized topic")
	}
}

func TestUnmarshalFuzzGarbage(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for range 2000 {
		n := rng.IntN(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.UintN(256))
		}
		// Must never panic; error or not is fine.
		_, _ = Unmarshal(b)
	}
}

// Property: marshal→unmarshal is the identity for valid events.
func TestCodecPropertyRoundtrip(t *testing.T) {
	f := func(id uint64, src string, seg1, seg2 string, kind8 uint8, ttl uint8, rel bool, ts int64, payload []byte) bool {
		if len(src) > 64 || len(seg1) > 32 || len(seg2) > 32 || len(payload) > 4096 {
			return true // out of scope, limits tested elsewhere
		}
		if strings.ContainsAny(src, "\x00") {
			src = "s"
		}
		e := &Event{
			ID:        id,
			Source:    src,
			Topic:     "/" + sanitize(seg1) + "/" + sanitize(seg2),
			Kind:      Kind(kind8%uint8(kindMax-1)) + 1,
			TTL:       ttl,
			Reliable:  rel,
			Timestamp: ts,
			Payload:   payload,
		}
		if len(e.Payload) == 0 {
			e.Payload = nil
		}
		got, err := Unmarshal(Marshal(e))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(e, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	if s == "" {
		return "x"
	}
	return strings.Map(func(r rune) rune {
		if r == '/' || r == '*' || r == '#' {
			return '_'
		}
		return r
	}, s)
}

func TestCloneIsDeep(t *testing.T) {
	e := sample()
	c := e.Clone()
	c.Headers["codec"] = "changed"
	c.Payload[0] = 'X'
	if e.Headers["codec"] == "changed" {
		t.Error("clone shares headers map")
	}
	if e.Payload[0] == 'X' {
		t.Error("clone shares payload")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Event)
		wantErr bool
	}{
		{"valid", func(e *Event) {}, false},
		{"empty topic", func(e *Event) { e.Topic = "" }, true},
		{"bad kind", func(e *Event) { e.Kind = 0 }, true},
		{"long topic", func(e *Event) { e.Topic = strings.Repeat("t", MaxTopicLen+1) }, true},
		{"big payload", func(e *Event) { e.Payload = make([]byte, MaxPayloadLen+1) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := sample()
			tc.mutate(e)
			err := e.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestKeyIdentity(t *testing.T) {
	a := &Event{Source: "s", ID: 1}
	b := &Event{Source: "s", ID: 1}
	if a.Key() != b.Key() {
		t.Error("identical source/id must produce equal keys")
	}
	c := &Event{Source: "s2", ID: 1}
	if a.Key() == c.Key() {
		t.Error("different sources must produce different keys")
	}
}

func TestAge(t *testing.T) {
	e := &Event{Timestamp: 1000}
	if got := e.Age(3000); got != 2000 {
		t.Fatalf("Age = %v, want 2000ns", got)
	}
}

func TestStringContainsEssentials(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"client-7", "#42", "rtp", "/xgsp/session/9/video"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func BenchmarkEventMarshal(b *testing.B) {
	e := sample()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for b.Loop() {
		buf = AppendMarshal(buf[:0], e)
	}
}

func BenchmarkEventUnmarshal(b *testing.B) {
	buf := Marshal(sample())
	b.ReportAllocs()
	for b.Loop() {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
