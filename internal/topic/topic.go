// Package topic implements the hierarchical topic namespace and the
// subscription-matching engine used by the broker. Topics are
// slash-separated paths such as "/xgsp/session/42/video". Subscription
// patterns may use two wildcards:
//
//   - "*" matches exactly one segment: "/xgsp/session/*/video"
//   - "#" matches any suffix (zero or more segments) and must be the final
//     segment: "/xgsp/session/42/#"
//
// The matcher is a trie keyed by segment so that Match cost is bounded by
// topic depth, not subscription count.
package topic

import (
	"errors"
	"fmt"
	"strings"
)

// Wildcard segments.
const (
	// Single matches exactly one segment.
	Single = "*"
	// Rest matches any remaining suffix, including the empty one.
	Rest = "#"
)

// MaxSegments bounds topic depth to keep matching and wire costs small.
const MaxSegments = 16

// Validation errors.
var (
	ErrEmpty          = errors.New("topic: empty topic")
	ErrNoLeadingSlash = errors.New("topic: must start with '/'")
	ErrEmptySegment   = errors.New("topic: empty segment")
	ErrTooDeep        = fmt.Errorf("topic: more than %d segments", MaxSegments)
	ErrWildcard       = errors.New("topic: wildcard not allowed in concrete topic")
	ErrRestNotLast    = errors.New("topic: '#' must be the final segment")
)

// Split parses a topic or pattern into segments, validating shape.
// allowWildcards controls whether "*" and "#" are legal.
func Split(s string, allowWildcards bool) ([]string, error) {
	if s == "" {
		return nil, ErrEmpty
	}
	if s[0] != '/' {
		return nil, ErrNoLeadingSlash
	}
	segs := strings.Split(s[1:], "/")
	if len(segs) > MaxSegments {
		return nil, ErrTooDeep
	}
	for i, seg := range segs {
		switch {
		case seg == "":
			return nil, fmt.Errorf("%w (segment %d of %q)", ErrEmptySegment, i, s)
		case seg == Single || seg == Rest:
			if !allowWildcards {
				return nil, fmt.Errorf("%w (%q)", ErrWildcard, s)
			}
			if seg == Rest && i != len(segs)-1 {
				return nil, fmt.Errorf("%w (%q)", ErrRestNotLast, s)
			}
		}
	}
	return segs, nil
}

// ValidateTopic checks a concrete (publishable) topic.
func ValidateTopic(s string) error {
	_, err := Split(s, false)
	return err
}

// ValidatePattern checks a subscription pattern.
func ValidatePattern(s string) error {
	_, err := Split(s, true)
	return err
}

// MatchPattern reports whether the concrete topic matches the pattern.
// Both must be well-formed; malformed input reports false.
func MatchPattern(pattern, topic string) bool {
	ps, err := Split(pattern, true)
	if err != nil {
		return false
	}
	ts, err := Split(topic, false)
	if err != nil {
		return false
	}
	return matchSegs(ps, ts)
}

func matchSegs(ps, ts []string) bool {
	for i, p := range ps {
		if p == Rest {
			return true // matches any suffix, including empty
		}
		if i >= len(ts) {
			return false
		}
		if p != Single && p != ts[i] {
			return false
		}
	}
	return len(ps) == len(ts)
}

// Join builds a topic from segments, e.g. Join("xgsp", "session", id).
func Join(segs ...string) string {
	return "/" + strings.Join(segs, "/")
}

// node is one trie level.
type node[V comparable] struct {
	children map[string]*node[V]
	// exact holds subscribers whose pattern ends exactly here.
	exact map[V]struct{}
	// rest holds subscribers whose pattern ends with "#" here.
	rest map[V]struct{}
}

func newNode[V comparable]() *node[V] {
	return &node[V]{}
}

func (n *node[V]) child(seg string) *node[V] {
	if n.children == nil {
		n.children = make(map[string]*node[V])
	}
	c, ok := n.children[seg]
	if !ok {
		c = newNode[V]()
		n.children[seg] = c
	}
	return c
}

func (n *node[V]) empty() bool {
	return len(n.children) == 0 && len(n.exact) == 0 && len(n.rest) == 0
}

// Trie maps subscription patterns to subscriber values of type V. It is
// not safe for concurrent use; the broker guards it with its own lock.
type Trie[V comparable] struct {
	root *node[V]
	size int
}

// NewTrie returns an empty subscription trie.
func NewTrie[V comparable]() *Trie[V] {
	return &Trie[V]{root: newNode[V]()}
}

// Len returns the number of (pattern, subscriber) entries.
func (t *Trie[V]) Len() int { return t.size }

// Add registers subscriber v under pattern. Adding the same (pattern, v)
// twice is a no-op. Returns an error for malformed patterns.
func (t *Trie[V]) Add(pattern string, v V) error {
	segs, err := Split(pattern, true)
	if err != nil {
		return err
	}
	n := t.root
	for i, seg := range segs {
		if seg == Rest {
			// Rest is validated to be last.
			_ = i
			if n.rest == nil {
				n.rest = make(map[V]struct{})
			}
			if _, dup := n.rest[v]; !dup {
				n.rest[v] = struct{}{}
				t.size++
			}
			return nil
		}
		n = n.child(seg)
	}
	if n.exact == nil {
		n.exact = make(map[V]struct{})
	}
	if _, dup := n.exact[v]; !dup {
		n.exact[v] = struct{}{}
		t.size++
	}
	return nil
}

// Remove unregisters subscriber v from pattern. It reports whether the
// entry existed. Malformed patterns report false.
func (t *Trie[V]) Remove(pattern string, v V) bool {
	segs, err := Split(pattern, true)
	if err != nil {
		return false
	}
	return t.remove(t.root, segs, v)
}

func (t *Trie[V]) remove(n *node[V], segs []string, v V) bool {
	if len(segs) == 0 {
		if _, ok := n.exact[v]; ok {
			delete(n.exact, v)
			t.size--
			return true
		}
		return false
	}
	seg := segs[0]
	if seg == Rest {
		if _, ok := n.rest[v]; ok {
			delete(n.rest, v)
			t.size--
			return true
		}
		return false
	}
	c, ok := n.children[seg]
	if !ok {
		return false
	}
	removed := t.remove(c, segs[1:], v)
	if removed && c.empty() {
		delete(n.children, seg)
	}
	return removed
}

// RemoveAll unregisters subscriber v from every pattern and returns how
// many entries were removed. Used when a client disconnects.
func (t *Trie[V]) RemoveAll(v V) int {
	removed := removeAllNode(t.root, v)
	t.size -= removed
	return removed
}

func removeAllNode[V comparable](n *node[V], v V) int {
	removed := 0
	if _, ok := n.exact[v]; ok {
		delete(n.exact, v)
		removed++
	}
	if _, ok := n.rest[v]; ok {
		delete(n.rest, v)
		removed++
	}
	for seg, c := range n.children {
		removed += removeAllNode(c, v)
		if c.empty() {
			delete(n.children, seg)
		}
	}
	return removed
}

// Match appends to dst every subscriber whose pattern matches the concrete
// topic, and returns the extended slice. A subscriber registered under
// several matching patterns appears once. Malformed topics match nothing.
func (t *Trie[V]) Match(topic string, dst []V) []V {
	segs, err := Split(topic, false)
	if err != nil {
		return dst
	}
	seen := make(map[V]struct{}, 8)
	t.match(t.root, segs, seen)
	for v := range seen {
		dst = append(dst, v)
	}
	return dst
}

// MatchFunc calls fn once for each distinct subscriber matching topic.
func (t *Trie[V]) MatchFunc(topic string, fn func(V)) {
	segs, err := Split(topic, false)
	if err != nil {
		return
	}
	seen := make(map[V]struct{}, 8)
	t.match(t.root, segs, seen)
	for v := range seen {
		fn(v)
	}
}

func (t *Trie[V]) match(n *node[V], segs []string, seen map[V]struct{}) {
	for v := range n.rest {
		seen[v] = struct{}{}
	}
	if len(segs) == 0 {
		for v := range n.exact {
			seen[v] = struct{}{}
		}
		return
	}
	if c, ok := n.children[segs[0]]; ok {
		t.match(c, segs[1:], seen)
	}
	if c, ok := n.children[Single]; ok {
		t.match(c, segs[1:], seen)
	}
}

// Patterns returns every registered pattern (without subscribers), sorted
// lexicographically. Used to advertise local subscriptions to peer brokers.
func (t *Trie[V]) Patterns() []string {
	var out []string
	var walk func(n *node[V], prefix string)
	walk = func(n *node[V], prefix string) {
		if len(n.exact) > 0 {
			p := prefix
			if p == "" {
				p = "/"
			}
			out = append(out, p)
		}
		if len(n.rest) > 0 {
			out = append(out, prefix+"/"+Rest)
		}
		for seg, c := range n.children {
			walk(c, prefix+"/"+seg)
		}
	}
	walk(t.root, "")
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
