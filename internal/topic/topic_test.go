package topic

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"slices"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitValid(t *testing.T) {
	segs, err := Split("/a/b/c", false)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(segs, []string{"a", "b", "c"}) {
		t.Fatalf("segs = %v", segs)
	}
}

func TestSplitErrors(t *testing.T) {
	cases := []struct {
		in        string
		wildcards bool
		wantErr   error
	}{
		{"", false, ErrEmpty},
		{"a/b", false, ErrNoLeadingSlash},
		{"/a//b", false, ErrEmptySegment},
		{"/", false, ErrEmptySegment},
		{"/a/*", false, ErrWildcard},
		{"/a/#", false, ErrWildcard},
		{"/a/#/b", true, ErrRestNotLast},
		{"/" + strings.Repeat("x/", MaxSegments) + "x", false, ErrTooDeep},
	}
	for _, tc := range cases {
		t.Run(tc.in, func(t *testing.T) {
			_, err := Split(tc.in, tc.wildcards)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Split(%q) err = %v, want %v", tc.in, err, tc.wantErr)
			}
		})
	}
}

func TestValidateTopicAndPattern(t *testing.T) {
	if err := ValidateTopic("/xgsp/session/42/video"); err != nil {
		t.Error(err)
	}
	if err := ValidateTopic("/a/*"); err == nil {
		t.Error("wildcard accepted in concrete topic")
	}
	if err := ValidatePattern("/a/*/c"); err != nil {
		t.Error(err)
	}
	if err := ValidatePattern("/a/#"); err != nil {
		t.Error(err)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"/a/b", "/a/b", true},
		{"/a/b", "/a/c", false},
		{"/a/b", "/a/b/c", false},
		{"/a/*", "/a/b", true},
		{"/a/*", "/a/b/c", false},
		{"/*/b", "/a/b", true},
		{"/a/#", "/a", true},
		{"/a/#", "/a/b/c/d", true},
		{"/a/#", "/b/x", false},
		{"/#", "/anything/at/all", true},
		{"/a/*/c", "/a/b/c", true},
		{"/a/*/c", "/a/b/d", false},
		{"bad", "/a", false},
		{"/a", "bad", false},
	}
	for _, tc := range cases {
		t.Run(tc.pattern+"~"+tc.topic, func(t *testing.T) {
			if got := MatchPattern(tc.pattern, tc.topic); got != tc.want {
				t.Fatalf("MatchPattern(%q, %q) = %v, want %v", tc.pattern, tc.topic, got, tc.want)
			}
		})
	}
}

func TestJoin(t *testing.T) {
	if got := Join("xgsp", "session", "42"); got != "/xgsp/session/42" {
		t.Fatalf("Join = %q", got)
	}
}

func TestTrieAddMatchRemove(t *testing.T) {
	tr := NewTrie[string]()
	mustAdd(t, tr, "/s/1/video", "alice")
	mustAdd(t, tr, "/s/1/video", "bob")
	mustAdd(t, tr, "/s/*/video", "carol")
	mustAdd(t, tr, "/s/#", "dave")

	got := tr.Match("/s/1/video", nil)
	slices.Sort(got)
	want := []string{"alice", "bob", "carol", "dave"}
	if !slices.Equal(got, want) {
		t.Fatalf("Match = %v, want %v", got, want)
	}

	if !tr.Remove("/s/1/video", "bob") {
		t.Fatal("Remove returned false for existing entry")
	}
	if tr.Remove("/s/1/video", "bob") {
		t.Fatal("Remove returned true for missing entry")
	}
	got = tr.Match("/s/1/video", nil)
	slices.Sort(got)
	if !slices.Equal(got, []string{"alice", "carol", "dave"}) {
		t.Fatalf("after remove, Match = %v", got)
	}
}

func TestTrieDuplicateAddIsNoop(t *testing.T) {
	tr := NewTrie[int]()
	mustAdd(t, tr, "/a", 1)
	mustAdd(t, tr, "/a", 1)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestTrieSubscriberUnderMultiplePatternsAppearsOnce(t *testing.T) {
	tr := NewTrie[int]()
	mustAdd(t, tr, "/a/b", 7)
	mustAdd(t, tr, "/a/*", 7)
	mustAdd(t, tr, "/a/#", 7)
	got := tr.Match("/a/b", nil)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("Match = %v, want [7]", got)
	}
}

func TestTrieRemoveAll(t *testing.T) {
	tr := NewTrie[string]()
	mustAdd(t, tr, "/a/b", "x")
	mustAdd(t, tr, "/a/*", "x")
	mustAdd(t, tr, "/c/#", "x")
	mustAdd(t, tr, "/a/b", "y")
	if n := tr.RemoveAll("x"); n != 3 {
		t.Fatalf("RemoveAll = %d, want 3", n)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if got := tr.Match("/a/b", nil); len(got) != 1 || got[0] != "y" {
		t.Fatalf("Match = %v, want [y]", got)
	}
}

func TestTriePrunesEmptyNodes(t *testing.T) {
	tr := NewTrie[int]()
	mustAdd(t, tr, "/a/b/c/d", 1)
	tr.Remove("/a/b/c/d", 1)
	if len(tr.root.children) != 0 {
		t.Fatal("trie kept empty branches after removal")
	}
	mustAdd(t, tr, "/a/b", 2)
	tr.RemoveAll(2)
	if len(tr.root.children) != 0 {
		t.Fatal("RemoveAll kept empty branches")
	}
}

func TestTrieMatchFunc(t *testing.T) {
	tr := NewTrie[int]()
	mustAdd(t, tr, "/a/#", 1)
	mustAdd(t, tr, "/a/b", 2)
	var got []int
	tr.MatchFunc("/a/b", func(v int) { got = append(got, v) })
	slices.Sort(got)
	if !slices.Equal(got, []int{1, 2}) {
		t.Fatalf("MatchFunc collected %v", got)
	}
}

func TestTrieMatchMalformedTopic(t *testing.T) {
	tr := NewTrie[int]()
	mustAdd(t, tr, "/a", 1)
	if got := tr.Match("no-slash", nil); len(got) != 0 {
		t.Fatalf("malformed topic matched %v", got)
	}
}

func TestTriePatterns(t *testing.T) {
	tr := NewTrie[int]()
	mustAdd(t, tr, "/a/b", 1)
	mustAdd(t, tr, "/a/*", 2)
	mustAdd(t, tr, "/a/#", 3)
	mustAdd(t, tr, "/z", 4)
	got := tr.Patterns()
	want := []string{"/a/#", "/a/*", "/a/b", "/z"}
	if !slices.Equal(got, want) {
		t.Fatalf("Patterns = %v, want %v", got, want)
	}
}

func TestTrieAddRejectsMalformed(t *testing.T) {
	tr := NewTrie[int]()
	if err := tr.Add("nope", 1); err == nil {
		t.Fatal("Add accepted malformed pattern")
	}
	if tr.Len() != 0 {
		t.Fatal("failed Add changed size")
	}
}

// Property: trie matching agrees with the reference MatchPattern for
// randomly generated patterns and topics.
func TestTriePropertyAgreesWithMatchPattern(t *testing.T) {
	segs := []string{"a", "b", "c"}
	rng := rand.New(rand.NewPCG(5, 17))
	genTopic := func(depth int) string {
		parts := make([]string, depth)
		for i := range parts {
			parts[i] = segs[rng.IntN(len(segs))]
		}
		return "/" + strings.Join(parts, "/")
	}
	genPattern := func(depth int) string {
		parts := make([]string, 0, depth)
		for i := range depth {
			r := rng.IntN(10)
			switch {
			case r == 0 && i == depth-1:
				parts = append(parts, Rest)
			case r <= 2:
				parts = append(parts, Single)
			default:
				parts = append(parts, segs[rng.IntN(len(segs))])
			}
		}
		return "/" + strings.Join(parts, "/")
	}
	for range 3000 {
		tr := NewTrie[int]()
		pattern := genPattern(1 + rng.IntN(4))
		if err := tr.Add(pattern, 1); err != nil {
			t.Fatalf("Add(%q): %v", pattern, err)
		}
		tpc := genTopic(1 + rng.IntN(4))
		trieHit := len(tr.Match(tpc, nil)) > 0
		refHit := MatchPattern(pattern, tpc)
		if trieHit != refHit {
			t.Fatalf("pattern %q topic %q: trie=%v ref=%v", pattern, tpc, trieHit, refHit)
		}
	}
}

// Property: '#' is a superset of '*' — any topic matched by a pattern with
// '*' in final position is matched by the same pattern with '#'.
func TestPropertyRestSupersetOfSingle(t *testing.T) {
	f := func(a, b uint8) bool {
		segs := []string{"x", "y"}
		topic := fmt.Sprintf("/%s/%s", segs[a%2], segs[b%2])
		star := "/" + segs[a%2] + "/*"
		rest := "/" + segs[a%2] + "/#"
		if MatchPattern(star, topic) && !MatchPattern(rest, topic) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustAdd[V comparable](t *testing.T, tr *Trie[V], pattern string, v V) {
	t.Helper()
	if err := tr.Add(pattern, v); err != nil {
		t.Fatalf("Add(%q): %v", pattern, err)
	}
}

func BenchmarkTopicMatch(b *testing.B) {
	tr := NewTrie[int]()
	for i := range 1000 {
		if err := tr.Add(fmt.Sprintf("/xgsp/session/%d/video", i), i); err != nil {
			b.Fatal(err)
		}
	}
	if err := tr.Add("/xgsp/session/*/video", -1); err != nil {
		b.Fatal(err)
	}
	var dst []int
	b.ReportAllocs()
	for b.Loop() {
		dst = tr.Match("/xgsp/session/500/video", dst[:0])
	}
}

func BenchmarkTopicMatchDeep(b *testing.B) {
	tr := NewTrie[int]()
	if err := tr.Add("/a/b/c/d/e/f/g/h", 1); err != nil {
		b.Fatal(err)
	}
	var dst []int
	b.ReportAllocs()
	for b.Loop() {
		dst = tr.Match("/a/b/c/d/e/f/g/h", dst[:0])
	}
}
