package topic

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// ShardedTrie partitions a subscription trie by the first topic segment
// so that concurrent matchers and mutators contend only per shard, not on
// one structure-wide lock. Patterns whose first segment is concrete live
// in exactly one shard; patterns whose first segment is a wildcard ("*"
// or "#") are replicated into every shard, so matching a concrete topic
// always touches exactly one shard.
//
// Each shard carries an epoch that is bumped on every mutation. Callers
// building caches on top of Match sample the epoch with MatchEpoch and
// treat a cached entry as valid only while the shard epoch is unchanged.
type ShardedTrie[V comparable] struct {
	shards []trieShard[V]
	seed   maphash.Seed
}

type trieShard[V comparable] struct {
	mu    sync.RWMutex
	trie  *Trie[V]
	epoch atomic.Uint64
	_     [8]uint64 // pad to a cache line so shard locks don't false-share
}

// DefaultShards is the shard count used when callers pass n <= 0. Small
// enough that replicated wildcard-first patterns stay cheap, large enough
// that a busy broker's publishers rarely collide on a shard lock.
const DefaultShards = 16

// NewShardedTrie creates a trie sharded n ways (n <= 0 uses
// DefaultShards; n is rounded up to a power of two).
func NewShardedTrie[V comparable](n int) *ShardedTrie[V] {
	if n <= 0 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	t := &ShardedTrie[V]{
		shards: make([]trieShard[V], pow),
		seed:   maphash.MakeSeed(),
	}
	for i := range t.shards {
		t.shards[i].trie = NewTrie[V]()
	}
	return t
}

// NumShards returns the shard count.
func (t *ShardedTrie[V]) NumShards() int { return len(t.shards) }

// firstSegment extracts the first path segment of a validated topic or
// pattern without allocating.
func firstSegment(s string) string {
	if len(s) < 2 || s[0] != '/' {
		return ""
	}
	rest := s[1:]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[:i]
		}
	}
	return rest
}

// shardOf maps a concrete first segment to its shard index.
func (t *ShardedTrie[V]) shardOf(seg string) int {
	return int(maphash.String(t.seed, seg) & uint64(len(t.shards)-1))
}

// ShardFor returns the shard index a concrete topic resolves to.
func (t *ShardedTrie[V]) ShardFor(topic string) int {
	return t.shardOf(firstSegment(topic))
}

// PatternShard returns the shard a pattern's entries live in, or
// all=true when the pattern's first segment is a wildcard (such patterns
// are replicated into every shard). Cache layers use it to scope
// per-pattern invalidation to the shards a mutation can have touched.
func (t *ShardedTrie[V]) PatternShard(pattern string) (shard int, all bool) {
	if wildcardFirst(pattern) {
		return 0, true
	}
	return t.shardOf(firstSegment(pattern)), false
}

// wildcardFirst reports whether the pattern's first segment is "*" or "#"
// (such patterns are replicated into every shard).
func wildcardFirst(pattern string) bool {
	seg := firstSegment(pattern)
	return seg == Single || seg == Rest
}

// Add registers subscriber v under pattern. Malformed patterns error.
func (t *ShardedTrie[V]) Add(pattern string, v V) error {
	if err := ValidatePattern(pattern); err != nil {
		return err
	}
	if wildcardFirst(pattern) {
		for i := range t.shards {
			s := &t.shards[i]
			s.mu.Lock()
			err := s.trie.Add(pattern, v)
			s.epoch.Add(1)
			s.mu.Unlock()
			if err != nil {
				return err
			}
		}
		return nil
	}
	s := &t.shards[t.shardOf(firstSegment(pattern))]
	s.mu.Lock()
	err := s.trie.Add(pattern, v)
	s.epoch.Add(1)
	s.mu.Unlock()
	return err
}

// Remove unregisters subscriber v from pattern, reporting whether the
// entry existed.
func (t *ShardedTrie[V]) Remove(pattern string, v V) bool {
	if wildcardFirst(pattern) {
		removed := false
		for i := range t.shards {
			s := &t.shards[i]
			s.mu.Lock()
			if s.trie.Remove(pattern, v) {
				removed = true
			}
			s.epoch.Add(1)
			s.mu.Unlock()
		}
		return removed
	}
	if ValidatePattern(pattern) != nil {
		return false
	}
	s := &t.shards[t.shardOf(firstSegment(pattern))]
	s.mu.Lock()
	removed := s.trie.Remove(pattern, v)
	s.epoch.Add(1)
	s.mu.Unlock()
	return removed
}

// RemoveAll unregisters v everywhere and returns the number of trie
// entries removed. Wildcard-first patterns are replicated per shard, so
// each replica counts; callers needing distinct-pattern counts should
// track patterns themselves (the broker does, via session bookkeeping).
func (t *ShardedTrie[V]) RemoveAll(v V) int {
	removed := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		removed += s.trie.RemoveAll(v)
		s.epoch.Add(1)
		s.mu.Unlock()
	}
	return removed
}

// Match appends every subscriber matching the concrete topic to dst.
func (t *ShardedTrie[V]) Match(topic string, dst []V) []V {
	matched, _ := t.MatchEpoch(topic, dst)
	return matched
}

// MatchEpoch is Match plus the shard epoch sampled before matching.
// A cache entry stored with this epoch is valid while Epoch(topic) still
// returns the same value: any concurrent mutation that could change the
// match result bumps the shard epoch, so a stale entry can never be
// observed as fresh.
func (t *ShardedTrie[V]) MatchEpoch(topic string, dst []V) ([]V, uint64) {
	return t.MatchEpochAt(t.ShardFor(topic), topic, dst)
}

// MatchEpochAt is MatchEpoch for a shard index already resolved via
// ShardFor, sparing hot paths a repeated hash of the topic.
func (t *ShardedTrie[V]) MatchEpochAt(shard int, topic string, dst []V) ([]V, uint64) {
	s := &t.shards[shard]
	epoch := s.epoch.Load()
	s.mu.RLock()
	dst = s.trie.Match(topic, dst)
	s.mu.RUnlock()
	return dst, epoch
}

// Epoch returns the current mutation epoch of the shard owning topic.
func (t *ShardedTrie[V]) Epoch(topic string) uint64 {
	return t.EpochAt(t.ShardFor(topic))
}

// EpochAt returns the mutation epoch of the shard at an index already
// resolved via ShardFor.
func (t *ShardedTrie[V]) EpochAt(shard int) uint64 {
	return t.shards[shard].epoch.Load()
}

// Len returns the number of (pattern, subscriber) entries; wildcard-first
// replicas count once.
func (t *ShardedTrie[V]) Len() int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		if i == 0 {
			total += s.trie.Len()
		} else {
			// Subtract this shard's replicas of wildcard-first patterns:
			// they are exactly the entries shard 0 also holds with a
			// wildcard first segment.
			total += s.trie.Len() - countWildcardFirst(s.trie)
		}
		s.mu.RUnlock()
	}
	return total
}

// countWildcardFirst counts entries under a top-level "*" or "#" segment.
func countWildcardFirst[V comparable](tr *Trie[V]) int {
	n := 0
	root := tr.root
	n += len(root.rest) // "/#"
	if c, ok := root.children[Single]; ok {
		n += countEntries(c)
	}
	return n
}

func countEntries[V comparable](n *node[V]) int {
	total := len(n.exact) + len(n.rest)
	for _, c := range n.children {
		total += countEntries(c)
	}
	return total
}

// Patterns returns every registered pattern, sorted, de-duplicating
// wildcard-first replicas.
func (t *ShardedTrie[V]) Patterns() []string {
	seen := make(map[string]struct{})
	var out []string
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		ps := s.trie.Patterns()
		s.mu.RUnlock()
		for _, p := range ps {
			if _, dup := seen[p]; !dup {
				seen[p] = struct{}{}
				out = append(out, p)
			}
		}
	}
	sortStrings(out)
	return out
}
