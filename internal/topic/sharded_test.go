package topic

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedTrieMatchBasics(t *testing.T) {
	st := NewShardedTrie[string](4)
	for pattern, sub := range map[string]string{
		"/media/video/*": "v",
		"/media/#":       "m",
		"/chat/room/1":   "c",
		"/*/video/1":     "wild-single",
		"/#":             "wild-rest",
	} {
		if err := st.Add(pattern, sub); err != nil {
			t.Fatalf("add %q: %v", pattern, err)
		}
	}
	got := map[string]bool{}
	for _, v := range st.Match("/media/video/1", nil) {
		got[v] = true
	}
	for _, want := range []string{"v", "m", "wild-single", "wild-rest"} {
		if !got[want] {
			t.Errorf("match /media/video/1 missing %q (got %v)", want, got)
		}
	}
	if got["c"] {
		t.Error("chat subscriber matched a media topic")
	}
	// Wildcard-first patterns must match topics in every shard.
	for _, topic := range []string{"/a/video/1", "/b/video/1", "/c/video/1", "/d/video/1"} {
		found := false
		for _, v := range st.Match(topic, nil) {
			if v == "wild-single" {
				found = true
			}
		}
		if !found {
			t.Errorf("wildcard-first pattern missed topic %s", topic)
		}
	}
}

func TestShardedTrieRemove(t *testing.T) {
	st := NewShardedTrie[int](4)
	if err := st.Add("/a/b", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Add("/#", 1); err != nil {
		t.Fatal(err)
	}
	if !st.Remove("/a/b", 1) {
		t.Fatal("remove existing concrete-first pattern")
	}
	if st.Remove("/a/b", 1) {
		t.Fatal("double remove reported true")
	}
	if !st.Remove("/#", 1) {
		t.Fatal("remove existing wildcard-first pattern")
	}
	if vs := st.Match("/a/b", nil); len(vs) != 0 {
		t.Fatalf("matches after removal: %v", vs)
	}
}

func TestShardedTrieRemoveAll(t *testing.T) {
	st := NewShardedTrie[int](4)
	st.Add("/a/b", 1)
	st.Add("/c/d", 1)
	st.Add("/a/b", 2)
	if n := st.RemoveAll(1); n != 2 {
		t.Fatalf("RemoveAll removed %d entries, want 2", n)
	}
	vs := st.Match("/a/b", nil)
	if len(vs) != 1 || vs[0] != 2 {
		t.Fatalf("match after RemoveAll = %v, want [2]", vs)
	}
}

func TestShardedTrieEpochInvalidation(t *testing.T) {
	st := NewShardedTrie[int](4)
	st.Add("/a/b", 1)
	matched, epoch := st.MatchEpoch("/a/b", nil)
	if len(matched) != 1 {
		t.Fatalf("match = %v", matched)
	}
	if st.Epoch("/a/b") != epoch {
		t.Fatal("epoch changed without mutation")
	}
	// A mutation in the same shard must bump the epoch.
	st.Add("/a/c", 2)
	if st.Epoch("/a/b") == epoch {
		t.Fatal("epoch unchanged after same-shard mutation")
	}
	// Wildcard-first mutations bump every shard.
	_, e2 := st.MatchEpoch("/a/b", nil)
	st.Add("/#", 3)
	if st.Epoch("/a/b") == e2 {
		t.Fatal("epoch unchanged after wildcard-first mutation")
	}
}

func TestShardedTrieLenAndPatterns(t *testing.T) {
	st := NewShardedTrie[int](4)
	st.Add("/a/b", 1)
	st.Add("/a/b", 2)
	st.Add("/#", 1)
	st.Add("/*/x", 1)
	if n := st.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4 (replicas deduped)", n)
	}
	ps := st.Patterns()
	want := []string{"/#", "/*/x", "/a/b"}
	if len(ps) != len(want) {
		t.Fatalf("Patterns = %v, want %v", ps, want)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("Patterns = %v, want %v", ps, want)
		}
	}
}

func TestShardedTrieMalformed(t *testing.T) {
	st := NewShardedTrie[int](2)
	if err := st.Add("no-slash", 1); err == nil {
		t.Fatal("malformed pattern accepted")
	}
	if st.Remove("no-slash", 1) {
		t.Fatal("malformed remove reported true")
	}
	if vs := st.Match("no-slash", nil); len(vs) != 0 {
		t.Fatalf("malformed topic matched: %v", vs)
	}
}

func TestShardedTrieShardCountRounding(t *testing.T) {
	if n := NewShardedTrie[int](0).NumShards(); n != DefaultShards {
		t.Fatalf("default shards = %d, want %d", n, DefaultShards)
	}
	if n := NewShardedTrie[int](5).NumShards(); n != 8 {
		t.Fatalf("shards(5) = %d, want 8", n)
	}
	if n := NewShardedTrie[int](1).NumShards(); n != 1 {
		t.Fatalf("shards(1) = %d, want 1", n)
	}
}

func TestShardedTrieConcurrent(t *testing.T) {
	st := NewShardedTrie[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := fmt.Sprintf("/t%d/s%d", g, i%16)
				st.Add(p, g)
				st.Match(fmt.Sprintf("/t%d/s%d", g, i%16), nil)
				if i%3 == 0 {
					st.Remove(p, g)
				}
			}
			st.RemoveAll(g)
		}(g)
	}
	wg.Wait()
}
