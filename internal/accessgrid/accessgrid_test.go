package accessgrid

import (
	"context"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/transport"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

func TestVenueLifecycle(t *testing.T) {
	vs := NewVenueServer()
	defer vs.Stop()
	v, err := vs.CreateVenue("lobby")
	if err != nil {
		t.Fatal(err)
	}
	if v.Name != "lobby" {
		t.Fatal(v.Name)
	}
	if _, err := vs.CreateVenue("lobby"); err == nil {
		t.Fatal("duplicate venue accepted")
	}
	if _, ok := vs.Venue("lobby"); !ok {
		t.Fatal("lookup failed")
	}
	if got := vs.Venues(); len(got) != 1 || got[0] != "lobby" {
		t.Fatalf("venues = %v", got)
	}
	if _, err := vs.Enter("nowhere", "u"); err == nil {
		t.Fatal("entered unknown venue")
	}
}

func TestVenueMediaGroups(t *testing.T) {
	vs := NewVenueServer()
	defer vs.Stop()
	if _, err := vs.CreateVenue("room-a"); err != nil {
		t.Fatal(err)
	}
	alice, err := vs.Enter("room-a", "alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := vs.Enter("room-a", "bob")
	if err != nil {
		t.Fatal(err)
	}
	// Audio and video groups are isolated.
	alice.Audio.Send([]byte("audio-pkt"))
	select {
	case got := <-bob.Audio.Recv():
		if string(got) != "audio-pkt" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("audio group failed")
	}
	select {
	case <-bob.Video.Recv():
		t.Fatal("audio leaked into video group")
	default:
	}
	alice.Leave()
	bob.Leave()
}

func TestBridgeVenueToSession(t *testing.T) {
	b := broker.New(broker.Config{ID: "ag-bridge-test"})
	t.Cleanup(b.Stop)
	xc, err := b.LocalClient("xgsp-server", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	xsrv := xgsp.NewServer(xc, xgsp.ServerConfig{})
	if err := xsrv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(xsrv.Stop)
	ownerBC, err := b.LocalClient("owner", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ownerBC.Close() })
	owner, err := xgsp.NewClient(context.Background(), ownerBC, "owner")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(owner.Close)
	info, err := owner.Create(context.Background(), xgsp.CreateSession{Name: "ag-linked", Community: "accessgrid"})
	if err != nil {
		t.Fatal(err)
	}

	vs := NewVenueServer()
	t.Cleanup(vs.Stop)
	if _, err := vs.CreateVenue("big-room"); err != nil {
		t.Fatal(err)
	}
	bridgeBC, err := b.LocalClient("ag-bridge", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bridgeBC.Close() })
	bridge, err := NewBridge(bridgeBC, vs, "big-room", info)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)

	agUser, err := vs.Enter("big-room", "ag-user")
	if err != nil {
		t.Fatal(err)
	}
	mmcsBC, err := b.LocalClient("mmcs-user", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mmcsBC.Close() })
	videoTopic := xgsp.SessionTopic(info.ID, "video")
	mmcsSub, err := mmcsBC.Subscribe(videoTopic, 64)
	if err != nil {
		t.Fatal(err)
	}

	// AG venue → MMCS topic.
	v := media.NewVideoSource(media.VideoConfig{})
	framePkts := v.NextFrame()
	raw, err := framePkts[0].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	agUser.Video.Send(raw)
	select {
	case e := <-mmcsSub.C():
		var p rtp.Packet
		if err := p.Unmarshal(e.Payload); err != nil {
			t.Fatal(err)
		}
		if p.SSRC != framePkts[0].SSRC {
			t.Fatalf("ssrc = %x", p.SSRC)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("venue → session failed")
	}

	// MMCS topic → AG venue.
	raw2, err := framePkts[1].Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := mmcsBC.Publish(videoTopic, event.KindRTP, raw2); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-agUser.Video.Recv():
		var p rtp.Packet
		if err := p.Unmarshal(got); err != nil {
			t.Fatal(err)
		}
		if p.SequenceNumber != framePkts[1].SequenceNumber {
			t.Fatalf("seq = %d", p.SequenceNumber)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session → venue failed")
	}
}

func TestVenueServerStopped(t *testing.T) {
	vs := NewVenueServer()
	vs.Stop()
	if _, err := vs.CreateVenue("late"); err == nil {
		t.Fatal("create after stop")
	}
}
