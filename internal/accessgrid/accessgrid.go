// Package accessgrid simulates the Access Grid venue model (§2.1) at the
// surface Global-MMCS integrates against: a venue server hosting named
// venues, each with per-media emulated multicast groups, venue clients,
// and a bridge mapping a venue's groups onto a Global-MMCS session's
// topics.
package accessgrid

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/mcast"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// Media kinds carried by a venue.
const (
	MediaAudio = "audio"
	MediaVideo = "video"
)

// Venue is one Access Grid virtual room.
type Venue struct {
	Name   string
	groups map[string]*mcast.Bus
	users  map[string]struct{}
}

// VenueServer hosts venues.
type VenueServer struct {
	mu     sync.Mutex
	venues map[string]*Venue
	closed bool
}

// NewVenueServer creates an empty venue server.
func NewVenueServer() *VenueServer {
	return &VenueServer{venues: make(map[string]*Venue)}
}

// Stop closes all venues.
func (vs *VenueServer) Stop() {
	vs.mu.Lock()
	venues := make([]*Venue, 0, len(vs.venues))
	for _, v := range vs.venues {
		venues = append(venues, v)
	}
	clear(vs.venues)
	vs.closed = true
	vs.mu.Unlock()
	for _, v := range venues {
		for _, g := range v.groups {
			g.Close()
		}
	}
}

// CreateVenue adds a venue with audio and video groups.
func (vs *VenueServer) CreateVenue(name string) (*Venue, error) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.closed {
		return nil, errors.New("accessgrid: server stopped")
	}
	if _, exists := vs.venues[name]; exists {
		return nil, fmt.Errorf("accessgrid: venue %q exists", name)
	}
	v := &Venue{
		Name: name,
		groups: map[string]*mcast.Bus{
			MediaAudio: mcast.NewBus(),
			MediaVideo: mcast.NewBus(),
		},
		users: make(map[string]struct{}),
	}
	vs.venues[name] = v
	return v, nil
}

// Venue looks a venue up.
func (vs *VenueServer) Venue(name string) (*Venue, bool) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	v, ok := vs.venues[name]
	return v, ok
}

// Venues lists venue names.
func (vs *VenueServer) Venues() []string {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	out := make([]string, 0, len(vs.venues))
	for name := range vs.venues {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// VenueClient is one participant's memberships in a venue.
type VenueClient struct {
	User  string
	Audio *mcast.Member
	Video *mcast.Member
}

// Enter joins a user into a venue's media groups.
func (vs *VenueServer) Enter(venueName, user string) (*VenueClient, error) {
	vs.mu.Lock()
	v, ok := vs.venues[venueName]
	if ok {
		v.users[user] = struct{}{}
	}
	vs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("accessgrid: no venue %q", venueName)
	}
	audio, err := v.groups[MediaAudio].Join(0)
	if err != nil {
		return nil, err
	}
	video, err := v.groups[MediaVideo].Join(0)
	if err != nil {
		audio.Leave()
		return nil, err
	}
	return &VenueClient{User: user, Audio: audio, Video: video}, nil
}

// Leave removes the client's memberships.
func (c *VenueClient) Leave() {
	c.Audio.Leave()
	c.Video.Leave()
}

// Bridge relays one venue's media groups ↔ one Global-MMCS session's
// topics bidirectionally.
type Bridge struct {
	bc    *broker.Client
	audio *mcast.Member
	video *mcast.Member

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// NewBridge joins the venue's groups and wires them to the session.
func NewBridge(bc *broker.Client, vs *VenueServer, venueName string, session *xgsp.SessionInfo) (*Bridge, error) {
	client, err := vs.Enter(venueName, "mmcs-bridge")
	if err != nil {
		return nil, err
	}
	b := &Bridge{
		bc:    bc,
		audio: client.Audio,
		video: client.Video,
		done:  make(chan struct{}),
	}
	var audioTopic, videoTopic string
	for _, m := range session.Media {
		switch m.Type {
		case xgsp.MediaAudio:
			audioTopic = m.Topic
		case xgsp.MediaVideo:
			videoTopic = m.Topic
		}
	}
	type wiring struct {
		member *mcast.Member
		topic  string
	}
	for _, w := range []wiring{{client.Audio, audioTopic}, {client.Video, videoTopic}} {
		if w.topic == "" {
			continue
		}
		sub, err := bc.Subscribe(w.topic, 512)
		if err != nil {
			client.Leave()
			return nil, fmt.Errorf("accessgrid: subscribing %s: %w", w.topic, err)
		}
		member, topic := w.member, w.topic
		b.wg.Add(2)
		go func() {
			defer b.wg.Done()
			b.topicToGroup(sub, member)
		}()
		go func() {
			defer b.wg.Done()
			b.groupToTopic(member, topic)
		}()
	}
	return b, nil
}

// Close stops the bridge and leaves the venue.
func (b *Bridge) Close() {
	b.once.Do(func() { close(b.done) })
	b.audio.Leave()
	b.video.Leave()
	b.wg.Wait()
}

func (b *Bridge) topicToGroup(sub *broker.Subscription, member *mcast.Member) {
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			if e.Kind != event.KindRTP || e.Source == b.bc.ID() {
				continue
			}
			member.Send(e.Payload)
		case <-b.done:
			return
		}
	}
}

func (b *Bridge) groupToTopic(member *mcast.Member, topic string) {
	for {
		select {
		case data, ok := <-member.Recv():
			if !ok {
				return
			}
			if err := b.bc.PublishEvent(event.New(topic, event.KindRTP, data)); err != nil {
				return
			}
		case <-b.done:
			return
		}
	}
}
