package sip

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/clock"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/rtpproxy"
	"github.com/globalmmcs/globalmmcs/internal/transport"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// sipRig assembles broker + XGSP server + SIP gateway server.
type sipRig struct {
	b      *broker.Broker
	xsrv   *xgsp.Server
	xcli   *xgsp.Client
	server *Server
}

func newSIPRig(t *testing.T, fake clock.Clock) *sipRig {
	t.Helper()
	b := broker.New(broker.Config{ID: "sip-rig"})
	t.Cleanup(b.Stop)

	xc, err := b.LocalClient("xgsp-server", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	xsrv := xgsp.NewServer(xc, xgsp.ServerConfig{})
	if err := xsrv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(xsrv.Stop)

	gwBC, err := b.LocalClient("sip-gateway", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gwBC.Close() })
	xcli, err := xgsp.NewClient(context.Background(), gwBC, "sip-gateway")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(xcli.Close)

	proxyBC, err := b.LocalClient("sip-rtpproxy", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxyBC.Close() })
	proxy := rtpproxy.New(proxyBC)
	t.Cleanup(proxy.Close)

	cfg := ServerConfig{XGSP: xcli, Proxy: proxy}
	if fake != nil {
		cfg.Clock = fake
	}
	server, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Stop)
	return &sipRig{b: b, xsrv: xsrv, xcli: xcli, server: server}
}

func (r *sipRig) endpoint(t *testing.T, user string) *Endpoint {
	t.Helper()
	e, err := NewEndpoint(user, r.server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestRegisterAndLookup(t *testing.T) {
	rig := newSIPRig(t, nil)
	alice := rig.endpoint(t, "alice")
	if err := alice.Register(rig.server.Domain(), time.Hour); err != nil {
		t.Fatal(err)
	}
	contact, ok := rig.server.RegisteredContact("alice")
	if !ok || contact.User != "alice" {
		t.Fatalf("contact = %+v, %v", contact, ok)
	}
	if err := alice.Unregister(rig.server.Domain()); err != nil {
		t.Fatal(err)
	}
	if _, ok := rig.server.RegisteredContact("alice"); ok {
		t.Fatal("binding survived unregister")
	}
}

func TestRegistrationExpiry(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_000_000, 0))
	rig := newSIPRig(t, fake)
	alice := rig.endpoint(t, "alice")
	if err := alice.Register(rig.server.Domain(), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := rig.server.RegisteredContact("alice"); !ok {
		t.Fatal("not registered")
	}
	fake.Advance(11 * time.Second)
	// Expiry loop runs on fake clock ticks; advance triggers one check.
	deadline := time.Now().Add(2 * time.Second)
	for {
		fake.Advance(time.Second)
		if _, ok := rig.server.RegisteredContact("alice"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("binding never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestOptions(t *testing.T) {
	rig := newSIPRig(t, nil)
	alice := rig.endpoint(t, "alice")
	req := NewRequest(MethodOptions, "sip:"+rig.server.Domain(),
		alice.fromHeader(rig.server.Domain()), "<sip:"+rig.server.Domain()+">",
		alice.newCallID(), alice.nextCSeq.Add(1))
	resp, err := alice.transact(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != StatusOK || !strings.Contains(resp.Get("Allow"), "INVITE") {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	rig := newSIPRig(t, nil)
	alice := rig.endpoint(t, "alice")
	req := NewRequest("PUBLISH", "sip:x@"+rig.server.Domain(),
		alice.fromHeader(rig.server.Domain()), "<sip:x>",
		alice.newCallID(), alice.nextCSeq.Add(1))
	resp, err := alice.transact(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestGatewayCallFlow(t *testing.T) {
	rig := newSIPRig(t, nil)

	// Create a session through a regular XGSP user.
	ownerBC, err := rig.b.LocalClient("owner-bc", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ownerBC.Close() })
	owner, err := xgsp.NewClient(context.Background(), ownerBC, "owner")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(owner.Close)
	info, err := owner.Create(context.Background(), xgsp.CreateSession{Name: "sip-call-test"})
	if err != nil {
		t.Fatal(err)
	}

	// A broker-side observer subscribed to the session audio topic.
	obsBC, err := rig.b.LocalClient("obs-bc", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { obsBC.Close() })
	audioTopic := xgsp.SessionTopic(info.ID, "audio")
	obsSub, err := obsBC.Subscribe(audioTopic, 64)
	if err != nil {
		t.Fatal(err)
	}

	// The SIP endpoint allocates RTP sockets, then calls the session.
	alice := rig.endpoint(t, "alice")
	audioSock, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer audioSock.Close()
	audioPort := audioSock.LocalAddr().(*net.UDPAddr).Port

	call, err := alice.Invite(rig.server.Domain(), info.ID, audioPort, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rig.server.ActiveCalls() != 1 {
		t.Fatalf("active calls = %d", rig.server.ActiveCalls())
	}

	// The XGSP session now lists alice as a member.
	got := rig.xsrv.Lookup(info.ID)
	if got == nil || len(got.Members) != 1 || got.Members[0] != "alice" {
		t.Fatalf("members = %+v", got)
	}

	// Send raw RTP to the gateway's answered audio port; it must appear
	// on the broker topic.
	gwAudio, ok := call.AudioAddr()
	if !ok {
		t.Fatal("no audio in answer")
	}
	gwAddr, err := net.ResolveUDPAddr("udp", gwAudio)
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewAudioSource(media.AudioConfig{})
	pkt := src.NextPacket()
	raw, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := audioSock.WriteTo(raw, gwAddr); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-obsSub.C():
		var p rtp.Packet
		if err := p.Unmarshal(e.Payload); err != nil {
			t.Fatal(err)
		}
		if p.SequenceNumber != pkt.SequenceNumber {
			t.Fatalf("seq = %d", p.SequenceNumber)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("endpoint RTP never reached the session topic")
	}

	// Topic → endpoint direction: another member publishes; alice's
	// socket receives raw RTP.
	if err := obsBC.Publish(audioTopic, 2 /* KindRTP */, raw); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	if err := audioSock.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := audioSock.ReadFrom(buf); err != nil {
		t.Fatalf("no RTP back to endpoint: %v", err)
	}

	// Hang up: membership and call state clean up.
	if err := alice.Hangup(call); err != nil {
		t.Fatal(err)
	}
	if rig.server.ActiveCalls() != 0 {
		t.Fatal("call not removed")
	}
	got = rig.xsrv.Lookup(info.ID)
	if got == nil || len(got.Members) != 0 {
		t.Fatalf("members after bye = %+v", got)
	}
}

func TestInviteUnknownSession(t *testing.T) {
	rig := newSIPRig(t, nil)
	alice := rig.endpoint(t, "alice")
	if _, err := alice.Invite(rig.server.Domain(), "s999", 40000, 0); err == nil {
		t.Fatal("invite to unknown session succeeded")
	}
}

func TestInviteWithoutSDPRejected(t *testing.T) {
	rig := newSIPRig(t, nil)
	// Create an active session so the gateway path is reached.
	ownerBC, err := rig.b.LocalClient("o2", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ownerBC.Close() })
	owner, err := xgsp.NewClient(context.Background(), ownerBC, "owner2")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(owner.Close)
	info, err := owner.Create(context.Background(), xgsp.CreateSession{Name: "no-sdp"})
	if err != nil {
		t.Fatal(err)
	}
	alice := rig.endpoint(t, "alice")
	uri := "sip:" + info.ID + "@" + rig.server.Domain()
	req := NewRequest(MethodInvite, uri, alice.fromHeader(rig.server.Domain()),
		"<"+uri+">", alice.newCallID(), alice.nextCSeq.Add(1))
	resp, err := alice.transact(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestPagerMessageForwardedToUser(t *testing.T) {
	rig := newSIPRig(t, nil)
	alice := rig.endpoint(t, "alice")
	bob := rig.endpoint(t, "bob")
	if err := bob.Register(rig.server.Domain(), time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := alice.SendMessage(rig.server.Domain(), "bob", "hello bob"); err != nil {
		t.Fatal(err)
	}
	select {
	case req := <-bob.Requests():
		if req.Method != MethodMessage || string(req.Body) != "hello bob" {
			t.Fatalf("got %+v", req)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never forwarded")
	}
}

func TestMessageToUnknownUser(t *testing.T) {
	rig := newSIPRig(t, nil)
	alice := rig.endpoint(t, "alice")
	if err := alice.SendMessage(rig.server.Domain(), "ghost", "anyone?"); err == nil {
		t.Fatal("message to unknown user succeeded")
	}
}

func TestPresenceNotifications(t *testing.T) {
	rig := newSIPRig(t, nil)
	watcher := rig.endpoint(t, "watcher")
	target := rig.endpoint(t, "target")
	if err := watcher.WatchPresence(rig.server.Domain(), "target"); err != nil {
		t.Fatal(err)
	}
	// Immediate NOTIFY: target offline.
	ntf := recvRequest(t, watcher, MethodNotify)
	if !strings.Contains(string(ntf.Body), "closed") {
		t.Fatalf("initial presence should be closed: %s", ntf.Body)
	}
	// Target registers: watcher learns it is open.
	if err := target.Register(rig.server.Domain(), time.Hour); err != nil {
		t.Fatal(err)
	}
	ntf = recvRequest(t, watcher, MethodNotify)
	if !strings.Contains(string(ntf.Body), "open") {
		t.Fatalf("presence after register: %s", ntf.Body)
	}
	// Target unregisters: closed again.
	if err := target.Unregister(rig.server.Domain()); err != nil {
		t.Fatal(err)
	}
	ntf = recvRequest(t, watcher, MethodNotify)
	if !strings.Contains(string(ntf.Body), "closed") {
		t.Fatalf("presence after unregister: %s", ntf.Body)
	}
}

func recvRequest(t *testing.T, e *Endpoint, method string) *Message {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case req := <-e.Requests():
			if req.Method == method {
				return req
			}
		case <-deadline:
			t.Fatalf("no %s within 5s", method)
		}
	}
}
