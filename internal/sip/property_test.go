package sip

import (
	"strings"
	"testing"
	"testing/quick"
)

// sanitizeToken restricts quick-generated strings to header-safe tokens.
func sanitizeToken(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > ' ' && r < 127 && r != ':' && r != ';' && r != '<' && r != '>' && r != '@' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	out := b.String()
	if len(out) > 64 {
		out = out[:64]
	}
	return out
}

// TestMessagePropertyRoundtrip: marshal→parse preserves start line,
// headers and body for token-safe inputs.
func TestMessagePropertyRoundtrip(t *testing.T) {
	f := func(user, host, callID string, cseq uint32, body []byte) bool {
		user, host, callID = sanitizeToken(user), sanitizeToken(host), sanitizeToken(callID)
		if cseq == 0 {
			cseq = 1
		}
		if len(body) > 2048 {
			body = body[:2048]
		}
		uri := "sip:" + user + "@" + host
		m := NewRequest(MethodMessage, uri, "<"+uri+">;tag=1", "<"+uri+">", callID, cseq)
		if len(body) > 0 {
			m.Body = body
		}
		got, err := Parse(m.Marshal())
		if err != nil {
			return false
		}
		if got.Method != MethodMessage || got.RequestURI != uri || got.CallID() != callID {
			return false
		}
		gotSeq, method, err := got.CSeq()
		if err != nil || gotSeq != cseq || method != MethodMessage {
			return false
		}
		return string(got.Body) == string(body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestURIPropertyRoundtrip: String→ParseURI is the identity for valid
// URIs.
func TestURIPropertyRoundtrip(t *testing.T) {
	f := func(user, host string, port16 uint16) bool {
		u := URI{User: sanitizeToken(user), Host: sanitizeToken(host), Port: int(port16)}
		got, err := ParseURI(u.String())
		if err != nil {
			return false
		}
		return got == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestSDPPropertyRoundtrip: Marshal→ParseSDP preserves media sections.
func TestSDPPropertyRoundtrip(t *testing.T) {
	f := func(aPort, vPort uint16, host4 [4]byte) bool {
		host := hostString(host4)
		s := &SDP{
			Origin:      "o",
			SessionName: "s",
			Connection:  host,
		}
		if aPort > 0 {
			s.Media = append(s.Media, SDPMedia{Kind: "audio", Port: int(aPort), PayloadTypes: []int{0}})
		}
		if vPort > 0 {
			s.Media = append(s.Media, SDPMedia{Kind: "video", Port: int(vPort), PayloadTypes: []int{31}})
		}
		got, err := ParseSDP(s.Marshal())
		if err != nil {
			return false
		}
		if len(got.Media) != len(s.Media) || got.Connection != host {
			return false
		}
		for i := range s.Media {
			if got.Media[i].Kind != s.Media[i].Kind || got.Media[i].Port != s.Media[i].Port {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func hostString(b [4]byte) string {
	parts := make([]string, 4)
	for i, v := range b {
		parts[i] = itoa(int(v))
	}
	return strings.Join(parts, ".")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
