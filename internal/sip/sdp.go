package sip

import (
	"fmt"
	"strconv"
	"strings"
)

// SDPMedia is one m= section of a session description.
type SDPMedia struct {
	// Kind is "audio" or "video".
	Kind string
	// Port is the RTP port.
	Port int
	// PayloadTypes lists the offered RTP payload types.
	PayloadTypes []int
	// Connection overrides the session-level connection address.
	Connection string
}

// SDP is the subset of a session description Global-MMCS exchanges:
// origin, session name, connection address and media sections.
type SDP struct {
	// Origin is the o= username.
	Origin string
	// SessionName is the s= line.
	SessionName string
	// Connection is the session-level c= address.
	Connection string
	// Media lists m= sections.
	Media []SDPMedia
}

// Marshal renders the description.
func (s *SDP) Marshal() []byte {
	var b strings.Builder
	b.WriteString("v=0\r\n")
	origin := s.Origin
	if origin == "" {
		origin = "-"
	}
	fmt.Fprintf(&b, "o=%s 0 0 IN IP4 %s\r\n", origin, hostOf(s.Connection))
	name := s.SessionName
	if name == "" {
		name = "-"
	}
	fmt.Fprintf(&b, "s=%s\r\n", name)
	if s.Connection != "" {
		fmt.Fprintf(&b, "c=IN IP4 %s\r\n", hostOf(s.Connection))
	}
	b.WriteString("t=0 0\r\n")
	for _, m := range s.Media {
		pts := make([]string, len(m.PayloadTypes))
		for i, pt := range m.PayloadTypes {
			pts[i] = strconv.Itoa(pt)
		}
		fmt.Fprintf(&b, "m=%s %d RTP/AVP %s\r\n", m.Kind, m.Port, strings.Join(pts, " "))
		if m.Connection != "" {
			fmt.Fprintf(&b, "c=IN IP4 %s\r\n", hostOf(m.Connection))
		}
	}
	return []byte(b.String())
}

func hostOf(addr string) string {
	if addr == "" {
		return "0.0.0.0"
	}
	if host, _, found := strings.Cut(addr, ":"); found && host != "" {
		return host
	}
	return addr
}

// ParseSDP decodes the subset we emit. Unknown lines are ignored, as RFC
// 4566 requires.
func ParseSDP(b []byte) (*SDP, error) {
	s := &SDP{}
	var cur *SDPMedia
	for _, raw := range strings.Split(string(b), "\n") {
		line := strings.TrimRight(raw, "\r")
		if len(line) < 2 || line[1] != '=' {
			continue
		}
		val := line[2:]
		switch line[0] {
		case 'o':
			fields := strings.Fields(val)
			if len(fields) > 0 {
				s.Origin = fields[0]
			}
		case 's':
			s.SessionName = val
		case 'c':
			fields := strings.Fields(val)
			if len(fields) == 3 {
				if cur != nil {
					cur.Connection = fields[2]
				} else {
					s.Connection = fields[2]
				}
			}
		case 'm':
			fields := strings.Fields(val)
			if len(fields) < 3 {
				return nil, fmt.Errorf("sip: malformed m= line %q", line)
			}
			port, err := strconv.Atoi(fields[1])
			if err != nil || port < 0 || port > 65535 {
				return nil, fmt.Errorf("sip: malformed m= port %q", fields[1])
			}
			m := SDPMedia{Kind: fields[0], Port: port}
			for _, pt := range fields[3:] {
				n, err := strconv.Atoi(pt)
				if err == nil {
					m.PayloadTypes = append(m.PayloadTypes, n)
				}
			}
			s.Media = append(s.Media, m)
			cur = &s.Media[len(s.Media)-1]
		}
	}
	return s, nil
}

// MediaAddress returns the host:port an offerer expects RTP for the
// given media kind, resolving connection precedence.
func (s *SDP) MediaAddress(kind string) (string, bool) {
	for _, m := range s.Media {
		if m.Kind != kind || m.Port == 0 {
			continue
		}
		conn := m.Connection
		if conn == "" {
			conn = s.Connection
		}
		if conn == "" {
			return "", false
		}
		return fmt.Sprintf("%s:%d", hostOf(conn), m.Port), true
	}
	return "", false
}
