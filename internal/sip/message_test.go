package sip

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestParseRequest(t *testing.T) {
	raw := "INVITE sip:s1@mmcs.local SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK776\r\n" +
		"From: <sip:alice@mmcs.local>;tag=1\r\n" +
		"To: <sip:s1@mmcs.local>\r\n" +
		"Call-ID: abc@10.0.0.1\r\n" +
		"CSeq: 1 INVITE\r\n" +
		"Content-Type: application/sdp\r\n" +
		"Content-Length: 5\r\n\r\nhello"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsRequest() || m.Method != MethodInvite || m.RequestURI != "sip:s1@mmcs.local" {
		t.Fatalf("start line: %+v", m)
	}
	if m.CallID() != "abc@10.0.0.1" {
		t.Fatalf("call-id = %q", m.CallID())
	}
	cseq, method, err := m.CSeq()
	if err != nil || cseq != 1 || method != MethodInvite {
		t.Fatalf("cseq = %d %s %v", cseq, method, err)
	}
	if string(m.Body) != "hello" {
		t.Fatalf("body = %q", m.Body)
	}
}

func TestParseResponse(t *testing.T) {
	raw := "SIP/2.0 200 OK\r\nVia: SIP/2.0/UDP h:5060\r\nCall-ID: x\r\nCSeq: 2 BYE\r\nContent-Length: 0\r\n\r\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.IsRequest() || m.StatusCode != 200 || m.ReasonPhrase != "OK" {
		t.Fatalf("%+v", m)
	}
}

func TestParseToleratesBareLF(t *testing.T) {
	raw := "OPTIONS sip:x@h SIP/2.0\nCall-ID: y\nCSeq: 1 OPTIONS\n\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != MethodOptions {
		t.Fatal(m.Method)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"INVITE\r\n\r\n",
		"NOT A SIP LINE AT ALL\r\n\r\n",
		"SIP/2.0 xyz Bad\r\n\r\n",
		"INVITE sip:x SIP/2.0\r\nheader-without-colon\r\n\r\n",
		"INVITE sip:x SIP/2.0\r\nContent-Length: 99\r\n\r\nshort",
		"INVITE sip:x SIP/2.0\r\nContent-Length: -1\r\n\r\n",
	}
	for _, raw := range bad {
		if _, err := Parse([]byte(raw)); err == nil {
			t.Errorf("Parse(%q) succeeded", raw)
		}
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	m := NewRequest(MethodMessage, "sip:bob@h", "<sip:alice@h>;tag=9", "<sip:bob@h>", "cid-1", 3)
	m.Set("Content-Type", "text/plain")
	m.Body = []byte("hi bob")
	got, err := Parse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != MethodMessage || got.Get("From") != "<sip:alice@h>;tag=9" {
		t.Fatalf("%+v", got)
	}
	if string(got.Body) != "hi bob" {
		t.Fatalf("body = %q", got.Body)
	}
	if got.Get("Content-Length") != "6" {
		t.Fatalf("content-length = %q", got.Get("Content-Length"))
	}
}

func TestHeaderOps(t *testing.T) {
	m := &Message{}
	m.Add("Via", "a")
	m.Add("Via", "b")
	m.Set("To", "x")
	if got := m.GetAll("via"); len(got) != 2 || got[0] != "a" {
		t.Fatalf("GetAll = %v", got)
	}
	m.Set("Via", "c") // replaces first
	if m.Get("Via") != "c" {
		t.Fatal("Set did not replace")
	}
	m.Del("Via")
	if m.Get("Via") != "" {
		t.Fatal("Del left values")
	}
	if m.Get("to") != "x" {
		t.Fatal("case-insensitive Get failed")
	}
}

func TestParseURI(t *testing.T) {
	cases := []struct {
		in   string
		want URI
		ok   bool
	}{
		{"sip:alice@host", URI{User: "alice", Host: "host"}, true},
		{"sip:alice@host:5070", URI{User: "alice", Host: "host", Port: 5070}, true},
		{"<sip:bob@h>;tag=77", URI{User: "bob", Host: "h"}, true},
		{`"Bob B" <sip:bob@h:9>`, URI{User: "bob", Host: "h", Port: 9}, true},
		{"sip:host-only", URI{Host: "host-only"}, true},
		{"sip:u@h;transport=udp", URI{User: "u", Host: "h"}, true},
		{"http://nope", URI{}, false},
		{"sip:", URI{}, false},
		{"sip:u@h:notaport", URI{}, false},
	}
	for _, tc := range cases {
		got, err := ParseURI(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseURI(%q) err = %v", tc.in, err)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseURI(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestURIStringAndAddress(t *testing.T) {
	u := URI{User: "a", Host: "h", Port: 5070}
	if u.String() != "sip:a@h:5070" {
		t.Fatal(u.String())
	}
	if u.Address() != "h:5070" {
		t.Fatal(u.Address())
	}
	u2 := URI{Host: "h"}
	if u2.Address() != "h:5060" {
		t.Fatal(u2.Address())
	}
	if u2.String() != "sip:h" {
		t.Fatal(u2.String())
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(200) != "OK" || StatusText(404) != "Not Found" {
		t.Fatal("status text")
	}
	if StatusText(299) != "Unknown" {
		t.Fatal("unknown code")
	}
}

func TestParseFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 33))
	corpus := []string{
		"INVITE sip:x@y SIP/2.0\r\nCSeq: 1 INVITE\r\n\r\n",
		"SIP/2.0 200 OK\r\n\r\n",
	}
	for range 3000 {
		base := []byte(corpus[rng.IntN(len(corpus))])
		// Random mutations.
		for range 1 + rng.IntN(5) {
			i := rng.IntN(len(base))
			base[i] = byte(rng.UintN(256))
		}
		_, _ = Parse(base)
	}
}

func TestSDPRoundtrip(t *testing.T) {
	s := &SDP{
		Origin:      "alice",
		SessionName: "seminar",
		Connection:  "10.1.2.3:0",
		Media: []SDPMedia{
			{Kind: "audio", Port: 49170, PayloadTypes: []int{0}},
			{Kind: "video", Port: 51372, PayloadTypes: []int{31}, Connection: "10.9.9.9"},
		},
	}
	b := s.Marshal()
	got, err := ParseSDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != "alice" || got.SessionName != "seminar" || got.Connection != "10.1.2.3" {
		t.Fatalf("%+v", got)
	}
	if len(got.Media) != 2 || got.Media[0].Port != 49170 || got.Media[1].Connection != "10.9.9.9" {
		t.Fatalf("media = %+v", got.Media)
	}
	addr, ok := got.MediaAddress("audio")
	if !ok || addr != "10.1.2.3:49170" {
		t.Fatalf("audio addr = %q %v", addr, ok)
	}
	addr, ok = got.MediaAddress("video")
	if !ok || addr != "10.9.9.9:51372" {
		t.Fatalf("video addr = %q %v", addr, ok)
	}
	if _, ok := got.MediaAddress("application"); ok {
		t.Fatal("phantom media")
	}
}

func TestSDPIgnoresUnknownLines(t *testing.T) {
	raw := "v=0\r\no=x 0 0 IN IP4 1.2.3.4\r\ns=s\r\nb=AS:256\r\na=sendrecv\r\nc=IN IP4 1.2.3.4\r\nm=audio 4000 RTP/AVP 0 8\r\n"
	s, err := ParseSDP([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Media) != 1 || len(s.Media[0].PayloadTypes) != 2 {
		t.Fatalf("%+v", s)
	}
}

func TestSDPErrors(t *testing.T) {
	if _, err := ParseSDP([]byte("m=audio\r\n")); err == nil {
		t.Error("short m= accepted")
	}
	if _, err := ParseSDP([]byte("m=audio notaport RTP/AVP 0\r\n")); err == nil {
		t.Error("bad port accepted")
	}
}

func TestViaAddr(t *testing.T) {
	if got := viaAddr("SIP/2.0/UDP 1.2.3.4:5060;branch=x"); got != "1.2.3.4:5060" {
		t.Fatal(got)
	}
	if got := viaAddr("SIP/2.0/UDP 1.2.3.4;branch=x"); got != "1.2.3.4:5060" {
		t.Fatal(got)
	}
	if got := viaAddr("garbage"); got != "" {
		t.Fatal(got)
	}
}

func TestMarshalOmitsStaleContentLength(t *testing.T) {
	m := NewRequest(MethodInfo, "sip:x@h", "<sip:a@h>", "<sip:x@h>", "c", 1)
	m.Add("Content-Length", "999")
	m.Body = []byte("xy")
	out := m.Marshal()
	if bytes.Count(out, []byte("Content-Length")) != 1 {
		t.Fatalf("duplicate content-length:\n%s", out)
	}
	if !strings.Contains(string(out), "Content-Length: 2") {
		t.Fatalf("wrong content-length:\n%s", out)
	}
}
