// Package sip implements the RFC 3261 subset Global-MMCS needs: a
// message parser and serializer, an SDP body codec, a registrar, and the
// SIP gateway that translates SIP calls into XGSP sessions and redirects
// endpoint RTP into the broker through RTP proxies. It also carries
// MESSAGE-based instant messaging and SUBSCRIBE/NOTIFY presence, which
// the paper's SIP servers provide for IM-capable clients.
package sip

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Methods supported by this subset.
const (
	MethodRegister  = "REGISTER"
	MethodInvite    = "INVITE"
	MethodAck       = "ACK"
	MethodBye       = "BYE"
	MethodCancel    = "CANCEL"
	MethodOptions   = "OPTIONS"
	MethodMessage   = "MESSAGE"
	MethodSubscribe = "SUBSCRIBE"
	MethodNotify    = "NOTIFY"
	MethodInfo      = "INFO"
)

// Common status codes.
const (
	StatusTrying             = 100
	StatusRinging            = 180
	StatusOK                 = 200
	StatusBadRequest         = 400
	StatusUnauthorized       = 401
	StatusNotFound           = 404
	StatusMethodNotAllowed   = 405
	StatusBusyHere           = 486
	StatusTemporarilyUnavail = 480
	StatusServerError        = 500
	StatusDecline            = 603
)

// StatusText returns the reason phrase for a status code.
func StatusText(code int) string {
	switch code {
	case StatusTrying:
		return "Trying"
	case StatusRinging:
		return "Ringing"
	case StatusOK:
		return "OK"
	case StatusBadRequest:
		return "Bad Request"
	case StatusUnauthorized:
		return "Unauthorized"
	case StatusNotFound:
		return "Not Found"
	case StatusMethodNotAllowed:
		return "Method Not Allowed"
	case StatusBusyHere:
		return "Busy Here"
	case StatusTemporarilyUnavail:
		return "Temporarily Unavailable"
	case StatusServerError:
		return "Server Internal Error"
	case StatusDecline:
		return "Decline"
	default:
		return "Unknown"
	}
}

// Header is one SIP header field.
type Header struct {
	Name  string
	Value string
}

// Message is a SIP request or response. A request has Method set; a
// response has StatusCode set.
type Message struct {
	// Request fields.
	Method     string
	RequestURI string
	// Response fields.
	StatusCode   int
	ReasonPhrase string

	Headers []Header
	Body    []byte
}

// IsRequest reports whether m is a request.
func (m *Message) IsRequest() bool { return m.Method != "" }

// Get returns the first header value with the given name
// (case-insensitive), or "".
func (m *Message) Get(name string) string {
	for _, h := range m.Headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value
		}
	}
	return ""
}

// GetAll returns all values of a header.
func (m *Message) GetAll(name string) []string {
	var out []string
	for _, h := range m.Headers {
		if strings.EqualFold(h.Name, name) {
			out = append(out, h.Value)
		}
	}
	return out
}

// Set replaces the first occurrence of a header (appending if absent).
func (m *Message) Set(name, value string) {
	for i, h := range m.Headers {
		if strings.EqualFold(h.Name, name) {
			m.Headers[i].Value = value
			return
		}
	}
	m.Headers = append(m.Headers, Header{Name: name, Value: value})
}

// Add appends a header occurrence.
func (m *Message) Add(name, value string) {
	m.Headers = append(m.Headers, Header{Name: name, Value: value})
}

// Del removes all occurrences of a header.
func (m *Message) Del(name string) {
	out := m.Headers[:0]
	for _, h := range m.Headers {
		if !strings.EqualFold(h.Name, name) {
			out = append(out, h)
		}
	}
	m.Headers = out
}

// CallID returns the Call-ID header.
func (m *Message) CallID() string { return m.Get("Call-ID") }

// CSeq returns the CSeq sequence number and method.
func (m *Message) CSeq() (uint32, string, error) {
	v := m.Get("CSeq")
	if v == "" {
		return 0, "", errors.New("sip: missing CSeq")
	}
	parts := strings.Fields(v)
	if len(parts) != 2 {
		return 0, "", fmt.Errorf("sip: malformed CSeq %q", v)
	}
	n, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return 0, "", fmt.Errorf("sip: malformed CSeq number %q: %w", parts[0], err)
	}
	return uint32(n), parts[1], nil
}

// Marshal serialises the message, computing Content-Length.
func (m *Message) Marshal() []byte {
	var b bytes.Buffer
	if m.IsRequest() {
		fmt.Fprintf(&b, "%s %s SIP/2.0\r\n", m.Method, m.RequestURI)
	} else {
		reason := m.ReasonPhrase
		if reason == "" {
			reason = StatusText(m.StatusCode)
		}
		fmt.Fprintf(&b, "SIP/2.0 %d %s\r\n", m.StatusCode, reason)
	}
	for _, h := range m.Headers {
		if strings.EqualFold(h.Name, "Content-Length") {
			continue // recomputed below
		}
		fmt.Fprintf(&b, "%s: %s\r\n", h.Name, h.Value)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", len(m.Body))
	b.Write(m.Body)
	return b.Bytes()
}

// Parse errors.
var (
	ErrMalformed = errors.New("sip: malformed message")
)

// Parse decodes one SIP message from a datagram.
func Parse(data []byte) (*Message, error) {
	head, body, found := bytes.Cut(data, []byte("\r\n\r\n"))
	if !found {
		// Tolerate bare-LF senders.
		head, body, found = bytes.Cut(data, []byte("\n\n"))
		if !found {
			return nil, fmt.Errorf("%w: no header terminator", ErrMalformed)
		}
	}
	lines := splitLines(string(head))
	if len(lines) == 0 {
		return nil, fmt.Errorf("%w: empty message", ErrMalformed)
	}
	m := &Message{}
	if err := parseStartLine(lines[0], m); err != nil {
		return nil, err
	}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		m.Headers = append(m.Headers, Header{
			Name:  strings.TrimSpace(name),
			Value: strings.TrimSpace(value),
		})
	}
	// Honour Content-Length when present (datagram may carry padding).
	if cl := m.Get("Content-Length"); cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 || n > len(body) {
			return nil, fmt.Errorf("%w: content-length %q with %d body bytes", ErrMalformed, cl, len(body))
		}
		body = body[:n]
	}
	if len(body) > 0 {
		m.Body = bytes.Clone(body)
	}
	return m, nil
}

func splitLines(s string) []string {
	raw := strings.Split(s, "\n")
	out := make([]string, 0, len(raw))
	for _, l := range raw {
		out = append(out, strings.TrimRight(l, "\r"))
	}
	return out
}

func parseStartLine(line string, m *Message) error {
	if strings.HasPrefix(line, "SIP/2.0 ") {
		rest := strings.TrimPrefix(line, "SIP/2.0 ")
		codeStr, reason, _ := strings.Cut(rest, " ")
		code, err := strconv.Atoi(codeStr)
		if err != nil || code < 100 || code > 699 {
			return fmt.Errorf("%w: status line %q", ErrMalformed, line)
		}
		m.StatusCode = code
		m.ReasonPhrase = reason
		return nil
	}
	parts := strings.Fields(line)
	if len(parts) != 3 || parts[2] != "SIP/2.0" {
		return fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	m.Method = parts[0]
	m.RequestURI = parts[1]
	return nil
}

// URI is a parsed sip: URI of the form sip:user@host[:port][;params].
type URI struct {
	User string
	Host string
	Port int
}

// ParseURI decodes a sip: or <sip:> URI, ignoring parameters and display
// names.
func ParseURI(s string) (URI, error) {
	s = strings.TrimSpace(s)
	// Strip display name and angle brackets: `"Bob" <sip:bob@h>;tag=x`.
	if i := strings.IndexByte(s, '<'); i >= 0 {
		j := strings.IndexByte(s, '>')
		if j < i {
			return URI{}, fmt.Errorf("%w: uri %q", ErrMalformed, s)
		}
		s = s[i+1 : j]
	} else if i := strings.IndexByte(s, ';'); i >= 0 {
		s = s[:i]
	}
	rest, ok := strings.CutPrefix(s, "sip:")
	if !ok {
		return URI{}, fmt.Errorf("%w: uri %q lacks sip: scheme", ErrMalformed, s)
	}
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		rest = rest[:i]
	}
	var u URI
	if user, host, found := strings.Cut(rest, "@"); found {
		u.User = user
		rest = host
	} else {
		rest = user
	}
	host, portStr, found := strings.Cut(rest, ":")
	u.Host = host
	if found {
		p, err := strconv.Atoi(portStr)
		if err != nil || p <= 0 || p > 65535 {
			return URI{}, fmt.Errorf("%w: uri port %q", ErrMalformed, portStr)
		}
		u.Port = p
	}
	if u.Host == "" {
		return URI{}, fmt.Errorf("%w: uri %q lacks host", ErrMalformed, s)
	}
	return u, nil
}

// String renders the URI.
func (u URI) String() string {
	var b strings.Builder
	b.WriteString("sip:")
	if u.User != "" {
		b.WriteString(u.User)
		b.WriteByte('@')
	}
	b.WriteString(u.Host)
	if u.Port != 0 {
		fmt.Fprintf(&b, ":%d", u.Port)
	}
	return b.String()
}

// Address returns host:port with a default SIP port of 5060.
func (u URI) Address() string {
	port := u.Port
	if port == 0 {
		port = 5060
	}
	return fmt.Sprintf("%s:%d", u.Host, port)
}

// NewRequest builds a request with the mandatory headers.
func NewRequest(method, requestURI, from, to, callID string, cseq uint32) *Message {
	m := &Message{Method: method, RequestURI: requestURI}
	m.Add("Via", "SIP/2.0/UDP placeholder;branch=z9hG4bK"+callID+strconv.FormatUint(uint64(cseq), 10))
	m.Add("From", from)
	m.Add("To", to)
	m.Add("Call-ID", callID)
	m.Add("CSeq", fmt.Sprintf("%d %s", cseq, method))
	m.Add("Max-Forwards", "70")
	return m
}

// NewResponse builds a response echoing the dialogue headers of req.
func NewResponse(req *Message, code int) *Message {
	m := &Message{StatusCode: code}
	for _, name := range []string{"Via", "From", "To", "Call-ID", "CSeq"} {
		for _, v := range req.GetAll(name) {
			m.Add(name, v)
		}
	}
	return m
}
