package sip

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/clock"
	"github.com/globalmmcs/globalmmcs/internal/directory"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/rtpproxy"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// maxSIPDatagram bounds datagrams read from the socket.
const maxSIPDatagram = 64 << 10

// defaultExpires is the registration lifetime when a REGISTER does not
// carry an Expires header.
const defaultExpires = 3600 * time.Second

// ChatPublisher posts instant messages into session chat rooms; the IM
// service implements it.
type ChatPublisher interface {
	// PublishChat posts body from user into the session's chat room.
	PublishChat(sessionID, from, body string) error
}

// ServerConfig parameterises the SIP server.
type ServerConfig struct {
	// ListenAddr is the UDP address to bind (e.g. "127.0.0.1:0").
	ListenAddr string
	// Domain is the SIP domain this server is authoritative for.
	Domain string
	// XGSP, when set, enables the gateway: INVITEs to sip:<session>@domain
	// join the XGSP session and get RTP redirected through Proxy.
	XGSP *xgsp.Client
	// Proxy allocates RTP bindings for gatewayed calls. Required with
	// XGSP.
	Proxy *rtpproxy.Proxy
	// Chat, when set, receives MESSAGEs addressed to sessions.
	Chat ChatPublisher
	// Directory, when set, records registered endpoints as the user's
	// active media terminal (the paper's user↔terminal binding).
	Directory *directory.Store
	// Clock drives registration expiry; nil = system clock.
	Clock clock.Clock
	// Metrics receives counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.Domain == "" {
		c.Domain = "mmcs.local"
	}
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	if c.Metrics == nil {
		c.Metrics = &metrics.Registry{}
	}
	return c
}

// binding is one registrar entry.
type binding struct {
	contact URI
	addr    net.Addr // source address of the REGISTER, used for routing
	expires time.Time
}

// call is an active gatewayed call.
type call struct {
	sessionID string
	user      string
	audio     *rtpproxy.Binding
	video     *rtpproxy.Binding
}

// Server is the Global-MMCS SIP server: registrar, stateless proxy,
// presence agent and XGSP gateway in one UDP listener.
type Server struct {
	cfg ServerConfig
	pc  net.PacketConn

	mu       sync.Mutex
	bindings map[string]*binding // AOR user -> binding
	calls    map[string]*call    // Call-ID -> call
	watchers map[string][]watch  // presence target user -> watchers
	closed   bool

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// watch is one presence subscription.
type watch struct {
	watcher string
	addr    net.Addr
	callID  string
	from    string
	to      string
}

// NewServer binds the socket and starts serving.
func NewServer(cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.XGSP != nil && cfg.Proxy == nil {
		return nil, errors.New("sip: gateway requires an rtp proxy")
	}
	pc, err := net.ListenPacket("udp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("sip: binding %s: %w", cfg.ListenAddr, err)
	}
	s := &Server{
		cfg:      cfg,
		pc:       pc,
		bindings: make(map[string]*binding),
		calls:    make(map[string]*call),
		watchers: make(map[string][]watch),
		done:     make(chan struct{}),
	}
	s.wg.Add(2)
	go s.readLoop()
	go s.expiryLoop()
	return s, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.pc.LocalAddr().String() }

// Domain returns the configured SIP domain.
func (s *Server) Domain() string { return s.cfg.Domain }

// Stop closes the socket, ends all gatewayed calls and waits for the
// server goroutines.
func (s *Server) Stop() {
	s.once.Do(func() { close(s.done) })
	s.pc.Close()
	s.mu.Lock()
	s.closed = true
	calls := make([]*call, 0, len(s.calls))
	for _, c := range s.calls {
		calls = append(calls, c)
	}
	clear(s.calls)
	s.mu.Unlock()
	for _, c := range calls {
		s.teardownCall(c)
	}
	s.wg.Wait()
}

// RegisteredContact looks up a user's current contact.
func (s *Server) RegisteredContact(user string) (URI, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bindings[user]
	if !ok || !b.expires.After(s.cfg.Clock.Now()) {
		return URI{}, false
	}
	return b.contact, true
}

// ActiveCalls returns the number of gatewayed calls.
func (s *Server) ActiveCalls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.calls)
}

func (s *Server) readLoop() {
	defer s.wg.Done()
	buf := make([]byte, maxSIPDatagram)
	for {
		n, raddr, err := s.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		msg, err := Parse(buf[:n:n])
		if err != nil {
			s.cfg.Metrics.Counter("sip.malformed").Inc()
			continue
		}
		s.cfg.Metrics.Counter("sip.messages_in").Inc()
		if msg.IsRequest() {
			s.handleRequest(msg, raddr)
		} else {
			s.forwardResponse(msg)
		}
	}
}

func (s *Server) expiryLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.cfg.Clock.After(time.Second):
			now := s.cfg.Clock.Now()
			var expired []string
			s.mu.Lock()
			for user, b := range s.bindings {
				if !b.expires.After(now) {
					delete(s.bindings, user)
					expired = append(expired, user)
				}
			}
			s.mu.Unlock()
			for _, user := range expired {
				s.notifyPresence(user, false)
			}
		}
	}
}

func (s *Server) handleRequest(req *Message, raddr net.Addr) {
	switch req.Method {
	case MethodRegister:
		s.handleRegister(req, raddr)
	case MethodInvite:
		s.handleInvite(req, raddr)
	case MethodAck:
		// 2xx ACKs terminate the INVITE transaction; nothing to do.
	case MethodBye:
		s.handleBye(req, raddr)
	case MethodMessage:
		s.handleMessage(req, raddr)
	case MethodSubscribe:
		s.handleSubscribe(req, raddr)
	case MethodOptions:
		resp := NewResponse(req, StatusOK)
		resp.Set("Allow", strings.Join([]string{
			MethodInvite, MethodAck, MethodBye, MethodRegister,
			MethodMessage, MethodSubscribe, MethodOptions,
		}, ", "))
		s.send(resp, raddr)
	default:
		s.send(NewResponse(req, StatusMethodNotAllowed), raddr)
	}
}

func (s *Server) handleRegister(req *Message, raddr net.Addr) {
	to, err := ParseURI(req.Get("To"))
	if err != nil {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	contactHdr := req.Get("Contact")
	expires := defaultExpires
	if v := req.Get("Expires"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 0 {
			s.send(NewResponse(req, StatusBadRequest), raddr)
			return
		}
		expires = time.Duration(secs) * time.Second
	}
	if expires == 0 || contactHdr == "*" {
		// De-registration.
		s.mu.Lock()
		delete(s.bindings, to.User)
		s.mu.Unlock()
		s.notifyPresence(to.User, false)
		s.send(NewResponse(req, StatusOK), raddr)
		s.cfg.Metrics.Counter("sip.deregistrations").Inc()
		return
	}
	contact, err := ParseURI(contactHdr)
	if err != nil {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	s.mu.Lock()
	s.bindings[to.User] = &binding{
		contact: contact,
		addr:    raddr,
		expires: s.cfg.Clock.Now().Add(expires),
	}
	s.mu.Unlock()
	s.recordTerminal(to.User, contact)
	s.notifyPresence(to.User, true)
	resp := NewResponse(req, StatusOK)
	resp.Set("Contact", contactHdr)
	resp.Set("Expires", strconv.Itoa(int(expires/time.Second)))
	s.send(resp, raddr)
	s.cfg.Metrics.Counter("sip.registrations").Inc()
}

// recordTerminal mirrors a registration into the naming & directory
// service, creating the user account on first sight.
func (s *Server) recordTerminal(user string, contact URI) {
	dir := s.cfg.Directory
	if dir == nil {
		return
	}
	if _, err := dir.User(user); err != nil {
		_ = dir.AddUser(directory.User{ID: user, Name: user, Community: "sip", AudioCapable: true})
	}
	_ = dir.BindTerminal(directory.Terminal{
		ID:      "sip:" + user,
		UserID:  user,
		Kind:    directory.TerminalSIP,
		Address: contact.String(),
		Active:  true,
	})
}

func (s *Server) handleInvite(req *Message, raddr net.Addr) {
	to, err := ParseURI(req.RequestURI)
	if err != nil {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	// Gateway: INVITE addressed to an XGSP session id.
	if s.cfg.XGSP != nil && strings.HasPrefix(to.User, "s") {
		if info, err := s.lookupSession(to.User); err == nil && info != nil {
			s.gatewayInvite(req, raddr, info)
			return
		}
	}
	// Proxy: INVITE to a registered user.
	if b, ok := s.lookupBinding(to.User); ok {
		s.forwardRequest(req, b)
		return
	}
	s.send(NewResponse(req, StatusNotFound), raddr)
}

func (s *Server) lookupSession(id string) (*xgsp.SessionInfo, error) {
	info, err := s.cfg.XGSP.Lookup(context.Background(), id)
	if err != nil {
		return nil, err
	}
	if info == nil || !info.Active {
		return nil, fmt.Errorf("sip: no active session %s", id)
	}
	return info, nil
}

func (s *Server) lookupBinding(user string) (*binding, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bindings[user]
	if !ok || !b.expires.After(s.cfg.Clock.Now()) {
		return nil, false
	}
	return b, true
}

// gatewayInvite joins the caller into an XGSP session and answers with
// SDP that points the endpoint's RTP at freshly bound proxy ports.
func (s *Server) gatewayInvite(req *Message, raddr net.Addr, info *xgsp.SessionInfo) {
	from, err := ParseURI(req.Get("From"))
	if err != nil {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	offer, err := ParseSDP(req.Body)
	if err != nil || len(req.Body) == 0 {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	callID := req.CallID()
	if callID == "" {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	s.send(NewResponse(req, StatusTrying), raddr)

	user := "sip:" + from.User + "@" + from.Host
	if _, err := s.joinSession(info.ID, from.User, user); err != nil {
		s.cfg.Metrics.Counter("sip.gateway_join_failures").Inc()
		s.send(NewResponse(req, StatusTemporarilyUnavail), raddr)
		return
	}

	c := &call{sessionID: info.ID, user: from.User}
	host := hostOf(s.Addr())
	var answer SDP
	answer.Origin = "globalmmcs"
	answer.SessionName = info.Name
	answer.Connection = host
	bindMedia := func(kind string, topic string, pt int) (*rtpproxy.Binding, error) {
		b, err := s.cfg.Proxy.Bind(topic, host+":0")
		if err != nil {
			return nil, err
		}
		if remote, ok := offer.MediaAddress(kind); ok {
			if err := b.SetRemote(remote); err != nil {
				b.Close()
				return nil, err
			}
		}
		_, portStr, _ := strings.Cut(b.LocalAddr(), ":")
		port, _ := strconv.Atoi(portStr)
		answer.Media = append(answer.Media, SDPMedia{Kind: kind, Port: port, PayloadTypes: []int{pt}})
		return b, nil
	}
	for _, m := range info.Media {
		switch m.Type {
		case xgsp.MediaAudio:
			if _, ok := offer.MediaAddress("audio"); ok {
				if c.audio, err = bindMedia("audio", m.Topic, 0); err != nil {
					break
				}
			}
		case xgsp.MediaVideo:
			if _, ok := offer.MediaAddress("video"); ok {
				if c.video, err = bindMedia("video", m.Topic, 31); err != nil {
					break
				}
			}
		}
	}
	if err != nil {
		s.teardownCall(c)
		s.send(NewResponse(req, StatusServerError), raddr)
		return
	}
	s.mu.Lock()
	s.calls[callID] = c
	s.mu.Unlock()

	resp := NewResponse(req, StatusOK)
	resp.Set("Contact", "<sip:"+info.ID+"@"+s.cfg.Domain+">")
	resp.Set("Content-Type", "application/sdp")
	resp.Body = answer.Marshal()
	s.send(resp, raddr)
	s.cfg.Metrics.Counter("sip.gateway_calls").Inc()
}

func (s *Server) joinSession(sessionID, userID, terminal string) (*xgsp.SessionInfo, error) {
	return s.cfg.XGSP.JoinAs(context.Background(), sessionID, userID, terminal, "sip", nil)
}

func (s *Server) handleBye(req *Message, raddr net.Addr) {
	callID := req.CallID()
	s.mu.Lock()
	c, ok := s.calls[callID]
	delete(s.calls, callID)
	s.mu.Unlock()
	if !ok {
		s.send(NewResponse(req, StatusNotFound), raddr)
		return
	}
	s.teardownCall(c)
	s.send(NewResponse(req, StatusOK), raddr)
	s.cfg.Metrics.Counter("sip.gateway_byes").Inc()
}

func (s *Server) teardownCall(c *call) {
	if c.audio != nil {
		c.audio.Close()
	}
	if c.video != nil {
		c.video.Close()
	}
	if s.cfg.XGSP != nil && c.user != "" {
		_ = s.cfg.XGSP.LeaveAs(context.Background(), c.sessionID, c.user)
	}
}

func (s *Server) handleMessage(req *Message, raddr net.Addr) {
	to, err := ParseURI(req.RequestURI)
	if err != nil {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	from, err := ParseURI(req.Get("From"))
	if err != nil {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	// Session chat: MESSAGE to a session id lands in the chat room.
	if s.cfg.Chat != nil && strings.HasPrefix(to.User, "s") {
		if err := s.cfg.Chat.PublishChat(to.User, from.User, string(req.Body)); err == nil {
			s.send(NewResponse(req, StatusOK), raddr)
			s.cfg.Metrics.Counter("sip.chat_messages").Inc()
			return
		}
	}
	// Pager-mode IM to a registered user: forward.
	if b, ok := s.lookupBinding(to.User); ok {
		s.forwardRequest(req, b)
		return
	}
	s.send(NewResponse(req, StatusNotFound), raddr)
}

func (s *Server) handleSubscribe(req *Message, raddr net.Addr) {
	target, err := ParseURI(req.RequestURI)
	if err != nil {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	from, err := ParseURI(req.Get("From"))
	if err != nil {
		s.send(NewResponse(req, StatusBadRequest), raddr)
		return
	}
	w := watch{
		watcher: from.User,
		addr:    raddr,
		callID:  req.CallID(),
		from:    req.Get("To"),
		to:      req.Get("From"),
	}
	s.mu.Lock()
	s.watchers[target.User] = append(s.watchers[target.User], w)
	s.mu.Unlock()
	resp := NewResponse(req, StatusOK)
	resp.Set("Expires", "3600")
	s.send(resp, raddr)
	// Immediate NOTIFY with current state (RFC 6665 behaviour).
	_, online := s.RegisteredContact(target.User)
	s.sendNotify(w, target.User, online)
	s.cfg.Metrics.Counter("sip.subscriptions").Inc()
}

// notifyPresence informs all watchers of a user's new state.
func (s *Server) notifyPresence(user string, online bool) {
	s.mu.Lock()
	ws := append([]watch(nil), s.watchers[user]...)
	s.mu.Unlock()
	for _, w := range ws {
		s.sendNotify(w, user, online)
	}
}

func (s *Server) sendNotify(w watch, user string, online bool) {
	state := "closed"
	if online {
		state = "open"
	}
	ntf := NewRequest(MethodNotify, "sip:"+w.watcher+"@"+s.cfg.Domain, w.from, w.to, w.callID, 1)
	ntf.Set("Event", "presence")
	ntf.Set("Subscription-State", "active")
	ntf.Set("Content-Type", "application/pidf+xml")
	ntf.Body = []byte(fmt.Sprintf(
		`<presence entity="sip:%s@%s"><tuple id="t1"><status><basic>%s</basic></status></tuple></presence>`,
		user, s.cfg.Domain, state))
	s.send(ntf, w.addr)
}

// forwardRequest relays a request to a registered binding, adding our Via.
func (s *Server) forwardRequest(req *Message, b *binding) {
	fwd := &Message{
		Method:     req.Method,
		RequestURI: b.contact.String(),
		Body:       req.Body,
	}
	fwd.Headers = append([]Header(nil), req.Headers...)
	fwd.Headers = append([]Header{{Name: "Via", Value: "SIP/2.0/UDP " + s.Addr() + ";branch=z9hG4bKfwd"}}, fwd.Headers...)
	s.sendTo(fwd, b.addr)
	s.cfg.Metrics.Counter("sip.forwarded_requests").Inc()
}

// forwardResponse pops our Via and relays toward the next one.
func (s *Server) forwardResponse(resp *Message) {
	vias := resp.GetAll("Via")
	if len(vias) < 2 {
		return // response to us or unroutable; nothing to relay
	}
	// Pop the first Via (ours), route on the next.
	next := vias[1]
	addr := viaAddr(next)
	if addr == "" {
		return
	}
	out := &Message{
		StatusCode:   resp.StatusCode,
		ReasonPhrase: resp.ReasonPhrase,
		Body:         resp.Body,
	}
	popped := false
	for _, h := range resp.Headers {
		if strings.EqualFold(h.Name, "Via") && !popped {
			popped = true
			continue
		}
		out.Headers = append(out.Headers, h)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return
	}
	s.sendTo(out, ua)
	s.cfg.Metrics.Counter("sip.forwarded_responses").Inc()
}

// viaAddr extracts host:port from a Via header value.
func viaAddr(via string) string {
	fields := strings.Fields(via)
	if len(fields) < 2 {
		return ""
	}
	addr, _, _ := strings.Cut(fields[1], ";")
	if !strings.Contains(addr, ":") {
		addr += ":5060"
	}
	return addr
}

func (s *Server) send(m *Message, addr net.Addr) {
	s.sendTo(m, addr)
}

func (s *Server) sendTo(m *Message, addr net.Addr) {
	if _, err := s.pc.WriteTo(m.Marshal(), addr); err != nil {
		s.cfg.Metrics.Counter("sip.send_errors").Inc()
		return
	}
	s.cfg.Metrics.Counter("sip.messages_out").Inc()
}
