package sip

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// responseTimeout bounds each endpoint transaction.
const responseTimeout = 10 * time.Second

// Endpoint is a minimal SIP user agent used by the examples and tests:
// it can register, place calls to Global-MMCS sessions, send pager-mode
// MESSAGEs and watch presence.
type Endpoint struct {
	user       string
	serverAddr *net.UDPAddr
	pc         net.PacketConn

	nextCSeq atomic.Uint32
	nextCall atomic.Uint64

	mu      sync.Mutex
	waiters map[string]chan *Message // Call-ID+CSeq → response
	closed  bool

	// Requests delivers inbound requests (NOTIFY, MESSAGE) after the
	// endpoint auto-replies 200.
	requests chan *Message

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// NewEndpoint creates a UA for user targeting the given server address.
func NewEndpoint(user, serverAddr string) (*Endpoint, error) {
	ua, err := net.ResolveUDPAddr("udp", serverAddr)
	if err != nil {
		return nil, fmt.Errorf("sip: resolving server %s: %w", serverAddr, err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("sip: binding endpoint: %w", err)
	}
	e := &Endpoint{
		user:       user,
		serverAddr: ua,
		pc:         pc,
		waiters:    make(map[string]chan *Message),
		requests:   make(chan *Message, 64),
		done:       make(chan struct{}),
	}
	e.wg.Add(1)
	go e.readLoop()
	return e, nil
}

// Addr returns the endpoint's UDP address.
func (e *Endpoint) Addr() string { return e.pc.LocalAddr().String() }

// User returns the endpoint's user name.
func (e *Endpoint) User() string { return e.user }

// Requests delivers inbound NOTIFY/MESSAGE requests.
func (e *Endpoint) Requests() <-chan *Message { return e.requests }

// Close shuts the endpoint down.
func (e *Endpoint) Close() {
	e.once.Do(func() { close(e.done) })
	e.pc.Close()
	e.wg.Wait()
}

func (e *Endpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, maxSIPDatagram)
	for {
		n, raddr, err := e.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		msg, err := Parse(buf[:n:n])
		if err != nil {
			continue
		}
		if msg.IsRequest() {
			// Auto-acknowledge and surface to the application.
			resp := NewResponse(msg, StatusOK)
			_, _ = e.pc.WriteTo(resp.Marshal(), raddr)
			select {
			case e.requests <- msg:
			default:
			}
			continue
		}
		cseq, _, err := msg.CSeq()
		if err != nil {
			continue
		}
		key := msg.CallID() + "/" + strconv.FormatUint(uint64(cseq), 10)
		e.mu.Lock()
		ch := e.waiters[key]
		e.mu.Unlock()
		if ch != nil {
			select {
			case ch <- msg:
			default:
			}
		}
	}
}

// transact sends a request and waits for a final (>=200) response.
func (e *Endpoint) transact(req *Message) (*Message, error) {
	cseq, _, err := req.CSeq()
	if err != nil {
		return nil, err
	}
	key := req.CallID() + "/" + strconv.FormatUint(uint64(cseq), 10)
	ch := make(chan *Message, 4)
	e.mu.Lock()
	e.waiters[key] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.waiters, key)
		e.mu.Unlock()
	}()
	if _, err := e.pc.WriteTo(req.Marshal(), e.serverAddr); err != nil {
		return nil, fmt.Errorf("sip: sending %s: %w", req.Method, err)
	}
	deadline := time.After(responseTimeout)
	for {
		select {
		case resp := <-ch:
			if resp.StatusCode >= 200 {
				return resp, nil
			}
			// Provisional (100/180); keep waiting.
		case <-deadline:
			return nil, fmt.Errorf("sip: %s timed out", req.Method)
		case <-e.done:
			return nil, errors.New("sip: endpoint closed")
		}
	}
}

func (e *Endpoint) newCallID() string {
	return fmt.Sprintf("%s-%d@%s", e.user, e.nextCall.Add(1), e.Addr())
}

func (e *Endpoint) fromHeader(domain string) string {
	return fmt.Sprintf("<sip:%s@%s>;tag=%s", e.user, domain, e.user)
}

// Register registers the endpoint's contact with the server for the
// given duration.
func (e *Endpoint) Register(domain string, expires time.Duration) error {
	req := NewRequest(MethodRegister, "sip:"+domain,
		e.fromHeader(domain), "<sip:"+e.user+"@"+domain+">",
		e.newCallID(), e.nextCSeq.Add(1))
	req.Set("Contact", "<sip:"+e.user+"@"+e.Addr()+">")
	req.Set("Expires", strconv.Itoa(int(expires/time.Second)))
	req.Set("Via", "SIP/2.0/UDP "+e.Addr()+";branch=z9hG4bKreg")
	resp, err := e.transact(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != StatusOK {
		return fmt.Errorf("sip: register rejected: %d %s", resp.StatusCode, resp.ReasonPhrase)
	}
	return nil
}

// Unregister removes the binding.
func (e *Endpoint) Unregister(domain string) error {
	return e.Register(domain, 0)
}

// Call is an established session from this endpoint.
type Call struct {
	// ID is the SIP Call-ID.
	ID string
	// Remote is the answered SDP: where to send RTP.
	Remote *SDP
	target string
	domain string
	cseq   uint32
}

// AudioAddr returns the answerer's audio RTP address.
func (c *Call) AudioAddr() (string, bool) { return c.Remote.MediaAddress("audio") }

// VideoAddr returns the answerer's video RTP address.
func (c *Call) VideoAddr() (string, bool) { return c.Remote.MediaAddress("video") }

// Invite places a call to target (e.g. a session id) offering the given
// local RTP ports, and completes the handshake with an ACK.
func (e *Endpoint) Invite(domain, target string, audioPort, videoPort int) (*Call, error) {
	callID := e.newCallID()
	cseq := e.nextCSeq.Add(1)
	uri := "sip:" + target + "@" + domain
	req := NewRequest(MethodInvite, uri,
		e.fromHeader(domain), "<"+uri+">", callID, cseq)
	req.Set("Via", "SIP/2.0/UDP "+e.Addr()+";branch=z9hG4bKinv"+callID)
	req.Set("Contact", "<sip:"+e.user+"@"+e.Addr()+">")
	req.Set("Content-Type", "application/sdp")
	offer := SDP{
		Origin:      e.user,
		SessionName: "call",
		Connection:  hostOf(e.Addr()),
	}
	if audioPort > 0 {
		offer.Media = append(offer.Media, SDPMedia{Kind: "audio", Port: audioPort, PayloadTypes: []int{0}})
	}
	if videoPort > 0 {
		offer.Media = append(offer.Media, SDPMedia{Kind: "video", Port: videoPort, PayloadTypes: []int{31}})
	}
	req.Body = offer.Marshal()
	resp, err := e.transact(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != StatusOK {
		return nil, fmt.Errorf("sip: invite rejected: %d %s", resp.StatusCode, resp.ReasonPhrase)
	}
	answer, err := ParseSDP(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("sip: parsing answer: %w", err)
	}
	ack := NewRequest(MethodAck, uri, e.fromHeader(domain), resp.Get("To"), callID, cseq)
	ack.Set("Via", "SIP/2.0/UDP "+e.Addr()+";branch=z9hG4bKack"+callID)
	if _, err := e.pc.WriteTo(ack.Marshal(), e.serverAddr); err != nil {
		return nil, fmt.Errorf("sip: sending ack: %w", err)
	}
	return &Call{ID: callID, Remote: answer, target: target, domain: domain, cseq: cseq}, nil
}

// Hangup ends a call with BYE.
func (e *Endpoint) Hangup(c *Call) error {
	uri := "sip:" + c.target + "@" + c.domain
	req := NewRequest(MethodBye, uri,
		e.fromHeader(c.domain), "<"+uri+">", c.ID, e.nextCSeq.Add(1))
	req.Set("Via", "SIP/2.0/UDP "+e.Addr()+";branch=z9hG4bKbye"+c.ID)
	resp, err := e.transact(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != StatusOK {
		return fmt.Errorf("sip: bye rejected: %d", resp.StatusCode)
	}
	return nil
}

// SendMessage sends a pager-mode instant message to target (a user or a
// session id).
func (e *Endpoint) SendMessage(domain, target, body string) error {
	uri := "sip:" + target + "@" + domain
	req := NewRequest(MethodMessage, uri,
		e.fromHeader(domain), "<"+uri+">", e.newCallID(), e.nextCSeq.Add(1))
	req.Set("Via", "SIP/2.0/UDP "+e.Addr()+";branch=z9hG4bKmsg")
	req.Set("Content-Type", "text/plain")
	req.Body = []byte(body)
	resp, err := e.transact(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != StatusOK {
		return fmt.Errorf("sip: message rejected: %d", resp.StatusCode)
	}
	return nil
}

// WatchPresence subscribes to a user's presence; NOTIFYs arrive on
// Requests().
func (e *Endpoint) WatchPresence(domain, target string) error {
	uri := "sip:" + target + "@" + domain
	req := NewRequest(MethodSubscribe, uri,
		e.fromHeader(domain), "<"+uri+">", e.newCallID(), e.nextCSeq.Add(1))
	req.Set("Via", "SIP/2.0/UDP "+e.Addr()+";branch=z9hG4bKsub")
	req.Set("Event", "presence")
	req.Set("Expires", "3600")
	resp, err := e.transact(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != StatusOK {
		return fmt.Errorf("sip: subscribe rejected: %d", resp.StatusCode)
	}
	return nil
}
