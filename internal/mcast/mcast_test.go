package mcast

import (
	"sync"
	"testing"
	"time"
)

func TestBusFanout(t *testing.T) {
	b := NewBus()
	defer b.Close()
	a, err := b.Join(0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Join(0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Join(0)
	if err != nil {
		t.Fatal(err)
	}
	a.Send([]byte("hello"))
	for i, m := range []*Member{c, d} {
		select {
		case got := <-m.Recv():
			if string(got) != "hello" {
				t.Fatalf("member %d got %q", i, got)
			}
		case <-time.After(time.Second):
			t.Fatalf("member %d got nothing", i)
		}
	}
	// No self-delivery.
	select {
	case got := <-a.Recv():
		t.Fatalf("sender received own packet %q", got)
	default:
	}
	if b.Packets() != 1 {
		t.Fatalf("packets = %d", b.Packets())
	}
}

func TestBusLeave(t *testing.T) {
	b := NewBus()
	defer b.Close()
	a, _ := b.Join(0)
	c, _ := b.Join(0)
	if b.MemberCount() != 2 {
		t.Fatal(b.MemberCount())
	}
	c.Leave()
	if b.MemberCount() != 1 {
		t.Fatal(b.MemberCount())
	}
	a.Send([]byte("x"))
	if _, ok := <-c.Recv(); ok {
		t.Fatal("left member received data")
	}
}

func TestBusSlowMemberDrops(t *testing.T) {
	b := NewBus()
	defer b.Close()
	a, _ := b.Join(0)
	slow, _ := b.Join(2)
	for range 10 {
		a.Send([]byte("x"))
	}
	if slow.Drops() != 8 {
		t.Fatalf("drops = %d, want 8", slow.Drops())
	}
}

func TestBusCloseClosesMembers(t *testing.T) {
	b := NewBus()
	m, _ := b.Join(0)
	b.Close()
	if _, ok := <-m.Recv(); ok {
		t.Fatal("channel open after close")
	}
	if _, err := b.Join(0); err == nil {
		t.Fatal("join after close succeeded")
	}
}

func TestBusConcurrentSenders(t *testing.T) {
	b := NewBus()
	defer b.Close()
	recv, _ := b.Join(100000)
	var wg sync.WaitGroup
	const senders, per = 8, 100
	for range senders {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := b.Join(0)
			if err != nil {
				return
			}
			for range per {
				m.Send([]byte("p"))
			}
		}()
	}
	wg.Wait()
	got := 0
	timeout := time.After(2 * time.Second)
	for got < senders*per {
		select {
		case <-recv.Recv():
			got++
		case <-timeout:
			t.Fatalf("received %d/%d", got, senders*per)
		}
	}
}
