// Package mcast emulates IP multicast groups in-process. The paper's
// community systems (Admire on NSFCNET/CERNET, Access Grid venues)
// distribute media over multicast, which "seems to have a long time to
// become ubiquitously available" (§2.3) — and is equally unavailable in
// this reproduction environment, so a Bus gives each group the same
// all-members-receive semantics over channels.
package mcast

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Bus is one emulated multicast group. Every packet sent by a member is
// delivered to all other members (no self-delivery, matching a socket
// with IP_MULTICAST_LOOP off).
type Bus struct {
	mu      sync.Mutex
	members map[*Member]struct{}
	closed  bool

	packets atomic.Uint64
}

// Member is one joined endpoint.
type Member struct {
	bus   *Bus
	recv  chan []byte
	once  sync.Once
	drops atomic.Uint64
}

// NewBus creates an empty group.
func NewBus() *Bus {
	return &Bus{members: make(map[*Member]struct{})}
}

// Join adds a member whose receive buffer holds depth packets
// (default 256).
func (b *Bus) Join(depth int) (*Member, error) {
	if depth <= 0 {
		depth = 256
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errors.New("mcast: bus closed")
	}
	m := &Member{bus: b, recv: make(chan []byte, depth)}
	b.members[m] = struct{}{}
	return m, nil
}

// MemberCount returns the current group size.
func (b *Bus) MemberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.members)
}

// Packets returns the number of packets sent through the group.
func (b *Bus) Packets() uint64 { return b.packets.Load() }

// Close removes all members and closes their channels.
func (b *Bus) Close() {
	b.mu.Lock()
	members := make([]*Member, 0, len(b.members))
	for m := range b.members {
		members = append(members, m)
	}
	clear(b.members)
	b.closed = true
	b.mu.Unlock()
	for _, m := range members {
		m.closeChan()
	}
}

// Send delivers data to every other member. The slice is shared; members
// must not mutate it.
func (m *Member) Send(data []byte) {
	b := m.bus
	b.packets.Add(1)
	b.mu.Lock()
	members := make([]*Member, 0, len(b.members))
	for other := range b.members {
		if other != m {
			members = append(members, other)
		}
	}
	b.mu.Unlock()
	for _, other := range members {
		select {
		case other.recv <- data:
		default:
			other.drops.Add(1) // slow member: drop like UDP multicast
		}
	}
}

// Recv returns the member's delivery channel.
func (m *Member) Recv() <-chan []byte { return m.recv }

// Drops returns packets dropped because this member was slow.
func (m *Member) Drops() uint64 { return m.drops.Load() }

// Leave removes the member from the group.
func (m *Member) Leave() {
	b := m.bus
	b.mu.Lock()
	delete(b.members, m)
	b.mu.Unlock()
	m.closeChan()
}

func (m *Member) closeChan() {
	m.once.Do(func() { close(m.recv) })
}
