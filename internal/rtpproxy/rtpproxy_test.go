package rtpproxy

import (
	"net"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

func newProxyRig(t *testing.T) (*broker.Broker, *Proxy) {
	t.Helper()
	b := broker.New(broker.Config{ID: "proxy-test"})
	t.Cleanup(b.Stop)
	bc, err := b.LocalClient("rtpproxy", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	p := New(bc)
	t.Cleanup(p.Close)
	return b, p
}

func rawRTP(t *testing.T, seq uint16) []byte {
	t.Helper()
	p := &rtp.Packet{PayloadType: rtp.PayloadPCMU, SequenceNumber: seq, Timestamp: uint32(seq) * 160, SSRC: 7}
	p.Payload = []byte{1, 2, 3, 4}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEndpointToTopic(t *testing.T) {
	b, p := newProxyRig(t)
	binding, err := p.Bind("/xgsp/session/s1/audio", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A broker subscriber should observe the endpoint's raw RTP as events.
	sub, err := b.LocalClient("observer", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	s, err := sub.Subscribe("/xgsp/session/s1/audio", 16)
	if err != nil {
		t.Fatal(err)
	}

	ep, err := net.Dial("udp", binding.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Write(rawRTP(t, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-s.C():
		var pkt rtp.Packet
		if err := pkt.Unmarshal(e.Payload); err != nil {
			t.Fatal(err)
		}
		if pkt.SequenceNumber != 1 {
			t.Fatalf("seq = %d", pkt.SequenceNumber)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("raw RTP never reached the topic")
	}
	in, _ := binding.Stats()
	if in != 1 {
		t.Fatalf("in = %d", in)
	}
}

func TestTopicToEndpoint(t *testing.T) {
	b, p := newProxyRig(t)
	binding, err := p.Bind("/xgsp/session/s2/video", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := binding.SetRemote(ep.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	pub, err := b.LocalClient("pub", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Publish("/xgsp/session/s2/video", 2 /* KindRTP */, rawRTP(t, 9)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	if err := ep.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, _, err := ep.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	var pkt rtp.Packet
	if err := pkt.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if pkt.SequenceNumber != 9 {
		t.Fatalf("seq = %d", pkt.SequenceNumber)
	}
}

func TestTwoGatewaysBridgedThroughTopic(t *testing.T) {
	// Two proxies (distinct broker clients, as two gateways would be) on
	// the same topic: raw RTP entering gateway A's binding comes out of
	// gateway B's binding toward its endpoint.
	b, pa := newProxyRig(t)
	bcB, err := b.LocalClient("rtpproxy-b", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bcB.Close() })
	pb := New(bcB)
	t.Cleanup(pb.Close)

	bindA, err := pa.Bind("/xgsp/session/s3/audio", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bindB, err := pb.Bind("/xgsp/session/s3/audio", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()
	if err := bindB.SetRemote(epB.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	epA, err := net.Dial("udp", bindA.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	if _, err := epA.Write(rawRTP(t, 42)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	if err := epB.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, _, err := epB.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	var pkt rtp.Packet
	if err := pkt.Unmarshal(buf[:n]); err != nil {
		t.Fatal(err)
	}
	if pkt.SequenceNumber != 42 {
		t.Fatalf("seq = %d", pkt.SequenceNumber)
	}
}

func TestBindingIgnoresOwnEcho(t *testing.T) {
	_, p := newProxyRig(t)
	binding, err := p.Bind("/xgsp/session/s4/audio", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := binding.SetRemote(ep.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	// Endpoint sends a packet; the proxy publishes it; the subscription
	// loops it back — but it must NOT be forwarded back to the endpoint.
	sender, err := net.Dial("udp", binding.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()
	if _, err := sender.Write(rawRTP(t, 3)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	if err := ep.SetReadDeadline(time.Now().Add(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if n, _, err := ep.ReadFrom(buf); err == nil {
		t.Fatalf("echo forwarded to endpoint (%d bytes)", n)
	}
	_, out := binding.Stats()
	if out != 0 {
		t.Fatalf("out = %d, want 0", out)
	}
}

func TestBindingDropsGarbage(t *testing.T) {
	b, p := newProxyRig(t)
	binding, err := p.Bind("/xgsp/session/s5/audio", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	obs, err := b.LocalClient("obs", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	s, err := obs.Subscribe("/xgsp/session/s5/audio", 16)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.Dial("udp", binding.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Write([]byte("not rtp at all")); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Write(rawRTP(t, 5)); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-s.C():
		var pkt rtp.Packet
		if err := pkt.Unmarshal(e.Payload); err != nil {
			t.Fatal("garbage forwarded")
		}
		if pkt.SequenceNumber != 5 {
			t.Fatalf("seq = %d", pkt.SequenceNumber)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("valid packet lost")
	}
}

func TestLearnRemoteFromFirstPacket(t *testing.T) {
	_, p := newProxyRig(t)
	binding, err := p.Bind("/xgsp/session/s6/audio", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if binding.remote.Load() != nil {
		t.Fatal("remote set before any packet")
	}
	ep, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.WriteTo(rawRTP(t, 7), mustAddr(t, binding.LocalAddr())); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for binding.remote.Load() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	got := binding.remote.Load()
	if got == nil || got.String() != ep.LocalAddr().String() {
		t.Fatalf("learned remote = %v, want %v", got, ep.LocalAddr())
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	_, p := newProxyRig(t)
	binding, err := p.Bind("/xgsp/session/s7/audio", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	binding.Close()
	binding.Close()
	p.Close()
	if _, err := p.Bind("/t", "127.0.0.1:0"); err == nil {
		t.Fatal("bind after close succeeded")
	}
}

func mustAddr(t *testing.T, s string) net.Addr {
	t.Helper()
	a, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMediaStreamThroughProxy(t *testing.T) {
	b, p := newProxyRig(t)
	binding, err := p.Bind("/xgsp/session/s8/audio", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	obs, err := b.LocalClient("obs8", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	s, err := obs.Subscribe("/xgsp/session/s8/audio", 256)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.Dial("udp", binding.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	src := media.NewAudioSource(media.AudioConfig{})
	const n = 50
	for range n {
		pkt := src.NextPacket()
		raw, err := pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ep.Write(raw); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < n {
		select {
		case <-s.C():
			got++
		case <-deadline:
			t.Fatalf("received %d/%d", got, n)
		}
	}
}
