// Package rtpproxy bridges raw RTP endpoints to broker topics — the "RTP
// Proxies in the NaradaBrokering system" of §3.2. A binding owns one UDP
// socket: inbound raw RTP datagrams are wrapped in KindRTP events and
// published to the binding's topic; events arriving on the topic are
// unwrapped and forwarded as raw RTP to the learned (or configured)
// remote endpoint address.
//
// H.323 and SIP gateways allocate one binding per logical media channel
// and hand its local address to the endpoint during signalling.
package rtpproxy

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
)

// maxRTPDatagram bounds datagrams read from endpoints.
const maxRTPDatagram = 64 << 10

// Proxy manages RTP bindings for one broker client.
type Proxy struct {
	client *broker.Client

	mu       sync.Mutex
	bindings map[*Binding]struct{}
	closed   bool
}

// New creates a proxy publishing through the given broker client. The
// client is owned by the caller.
func New(client *broker.Client) *Proxy {
	return &Proxy{
		client:   client,
		bindings: make(map[*Binding]struct{}),
	}
}

// Bind allocates a UDP socket on host (e.g. "127.0.0.1:0") bridged to
// topic. The returned binding forwards topic traffic to the first remote
// address it hears raw RTP from, unless SetRemote pins one.
func (p *Proxy) Bind(topic, host string) (*Binding, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("rtpproxy: closed")
	}
	p.mu.Unlock()

	pc, err := net.ListenPacket("udp", host)
	if err != nil {
		return nil, fmt.Errorf("rtpproxy: allocating port: %w", err)
	}
	sub, err := p.client.Subscribe(topic, 512)
	if err != nil {
		pc.Close()
		return nil, fmt.Errorf("rtpproxy: subscribing %s: %w", topic, err)
	}
	b := &Binding{
		proxy: p,
		topic: topic,
		pc:    pc,
		sub:   sub,
		done:  make(chan struct{}),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		pc.Close()
		return nil, errors.New("rtpproxy: closed")
	}
	p.bindings[b] = struct{}{}
	p.mu.Unlock()

	b.wg.Add(2)
	go b.inboundLoop()
	go b.outboundLoop()
	return b, nil
}

// Close tears down all bindings.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	bindings := make([]*Binding, 0, len(p.bindings))
	for b := range p.bindings {
		bindings = append(bindings, b)
	}
	p.mu.Unlock()
	for _, b := range bindings {
		b.Close()
	}
}

func (p *Proxy) remove(b *Binding) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.bindings, b)
}

// Binding is one UDP↔topic bridge.
type Binding struct {
	proxy *Proxy
	topic string
	pc    net.PacketConn
	sub   *broker.Subscription

	remote atomic.Pointer[net.UDPAddr]

	in  atomic.Uint64
	out atomic.Uint64

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// LocalAddr returns the bound UDP address endpoints should send RTP to.
func (b *Binding) LocalAddr() string { return b.pc.LocalAddr().String() }

// Topic returns the bridged topic.
func (b *Binding) Topic() string { return b.topic }

// SetRemote pins the endpoint address that topic traffic is forwarded to.
func (b *Binding) SetRemote(addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("rtpproxy: resolving remote %q: %w", addr, err)
	}
	b.remote.Store(ua)
	return nil
}

// Stats returns (packets published to topic, packets forwarded to the
// endpoint).
func (b *Binding) Stats() (in, out uint64) { return b.in.Load(), b.out.Load() }

// Close releases the socket and subscription.
func (b *Binding) Close() {
	b.once.Do(func() {
		close(b.done)
		b.pc.Close()
		_ = b.sub.Cancel()
		b.proxy.remove(b)
	})
	b.wg.Wait()
}

// inboundLoop reads raw RTP from the endpoint and publishes it.
func (b *Binding) inboundLoop() {
	defer b.wg.Done()
	buf := make([]byte, maxRTPDatagram)
	for {
		n, raddr, err := b.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		// Sanity-check it parses as RTP before flooding the session.
		var pkt rtp.Packet
		if err := pkt.Unmarshal(buf[:n]); err != nil {
			continue
		}
		// Learn the endpoint address from its first valid packet.
		if b.remote.Load() == nil {
			if ua, ok := raddr.(*net.UDPAddr); ok {
				b.remote.Store(ua)
			}
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		e := event.New(b.topic, event.KindRTP, payload)
		if err := b.proxy.client.PublishEvent(e); err != nil {
			return
		}
		b.in.Add(1)
	}
}

// outboundLoop forwards topic traffic to the endpoint as raw RTP.
func (b *Binding) outboundLoop() {
	defer b.wg.Done()
	for {
		select {
		case e, ok := <-b.sub.C():
			if !ok {
				return
			}
			if e.Kind != event.KindRTP {
				continue
			}
			// Our own publishes loop back through the broker; skip them.
			if e.Source == b.proxy.client.ID() {
				continue
			}
			remote := b.remote.Load()
			if remote == nil {
				continue // endpoint address not yet known
			}
			if _, err := b.pc.WriteTo(e.Payload, remote); err != nil {
				continue
			}
			b.out.Add(1)
		case <-b.done:
			return
		}
	}
}
