package reflector

import (
	"fmt"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

func TestReflectorFanout(t *testing.T) {
	r := New()
	defer r.Stop()
	const n = 10
	farEnds := make([]transport.Conn, n)
	for i := range n {
		near, far := transport.Pipe(fmt.Sprintf("recv%d", i), "reflector")
		if err := r.AddReceiver(near); err != nil {
			t.Fatal(err)
		}
		farEnds[i] = far
	}
	if r.ReceiverCount() != n {
		t.Fatalf("ReceiverCount = %d", r.ReceiverCount())
	}
	srcNear, srcFar := transport.Pipe("reflector", "sender")
	r.ServeSourceAsync(srcNear)

	pub := NewConnPublisher(srcFar, "sender")
	a := media.NewAudioSource(media.AudioConfig{})
	p := a.NextPacket()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishEvent(event.New("/media/a", event.KindRTP, b)); err != nil {
		t.Fatal(err)
	}
	for i, far := range farEnds {
		select {
		case <-time.After(2 * time.Second):
			t.Fatalf("receiver %d got nothing", i)
		default:
		}
		e, err := far.Recv()
		if err != nil {
			t.Fatalf("receiver %d: %v", i, err)
		}
		var got rtp.Packet
		if err := got.Unmarshal(e.Payload); err != nil {
			t.Fatalf("receiver %d: reflected payload unparseable: %v", i, err)
		}
		if got.SequenceNumber != p.SequenceNumber {
			t.Fatalf("receiver %d: seq %d, want %d", i, got.SequenceNumber, p.SequenceNumber)
		}
		if err := media.VerifyPayload(&got); err != nil {
			t.Fatalf("receiver %d: %v", i, err)
		}
	}
	in, out := r.Stats()
	if in != 1 || out != uint64(n) {
		t.Fatalf("stats in=%d out=%d, want 1,%d", in, out, n)
	}
}

func TestReflectorPreservesEventTimestamp(t *testing.T) {
	r := New()
	defer r.Stop()
	near, far := transport.Pipe("recv", "reflector")
	if err := r.AddReceiver(near); err != nil {
		t.Fatal(err)
	}
	srcNear, srcFar := transport.Pipe("reflector", "sender")
	r.ServeSourceAsync(srcNear)

	e := event.New("/media/v", event.KindRTP, mustRTP(t))
	e.Source, e.ID = "s", 1
	sentTS := e.Timestamp
	if err := srcFar.Send(e); err != nil {
		t.Fatal(err)
	}
	got, err := far.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != sentTS {
		t.Fatalf("timestamp rewritten: %d != %d (delay measurement would break)", got.Timestamp, sentTS)
	}
}

func TestReflectorDeadReceiverDoesNotBlockOthers(t *testing.T) {
	r := New()
	defer r.Stop()
	deadNear, deadFar := transport.Pipe("dead", "reflector")
	deadFar.Close()
	_ = deadNear
	if err := r.AddReceiver(deadNear); err != nil {
		t.Fatal(err)
	}
	liveNear, liveFar := transport.Pipe("live", "reflector")
	if err := r.AddReceiver(liveNear); err != nil {
		t.Fatal(err)
	}
	srcNear, srcFar := transport.Pipe("reflector", "sender")
	r.ServeSourceAsync(srcNear)
	e := event.New("/m", event.KindRTP, mustRTP(t))
	e.Source, e.ID = "s", 1
	if err := srcFar.Send(e); err != nil {
		t.Fatal(err)
	}
	if _, err := liveFar.Recv(); err != nil {
		t.Fatalf("live receiver starved by dead one: %v", err)
	}
}

func TestReflectorAddAfterStop(t *testing.T) {
	r := New()
	r.Stop()
	near, _ := transport.Pipe("a", "b")
	if err := r.AddReceiver(near); err == nil {
		t.Fatal("AddReceiver after Stop succeeded")
	}
}

func TestReflectorSerializesSendCost(t *testing.T) {
	// With per-send cost C and N receivers, one packet must take ~N*C in
	// the dispatch thread — that is the baseline's defining bottleneck.
	r := New()
	defer r.Stop()
	const n = 8
	const cost = 2 * time.Millisecond
	for i := range n {
		near, far := transport.Pipe(fmt.Sprintf("r%d", i), "reflector")
		shaped := transport.Shape(near, transport.LinkProfile{SendCost: cost})
		if err := r.AddReceiver(shaped); err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				if _, err := far.Recv(); err != nil {
					return
				}
			}
		}()
	}
	e := event.New("/m", event.KindRTP, mustRTP(t))
	e.Source, e.ID = "s", 1
	start := time.Now()
	r.reflect(e)
	if got := time.Since(start); got < n*cost {
		t.Fatalf("reflect took %v, want >= %v (serialized)", got, n*cost)
	}
}

func TestConnPublisherStampsIdentity(t *testing.T) {
	a, b := transport.Pipe("x", "y")
	pub := NewConnPublisher(a, "me")
	if err := pub.PublishEvent(event.New("/t", event.KindData, nil)); err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishEvent(event.New("/t", event.KindData, nil)); err != nil {
		t.Fatal(err)
	}
	e1, _ := b.Recv()
	e2, _ := b.Recv()
	if e1.Source != "me" || e1.ID != 1 || e2.ID != 2 {
		t.Fatalf("identity not stamped: %v %v", e1, e2)
	}
}

func mustRTP(t *testing.T) []byte {
	t.Helper()
	a := media.NewAudioSource(media.AudioConfig{})
	b, err := a.NextPacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
