// Package reflector implements the JMF-reflector baseline that Figure 3
// of the paper compares NaradaBrokering against.
//
// It faithfully models the architecture that made the JMF RTPManager
// reflector slow: a single dispatch thread receives each packet and then,
// for every registered receiver in turn, deep-copies the event, re-parses
// and re-marshals the RTP payload (JMF re-packetized per send), and sends
// synchronously before moving on. All per-send link costs are therefore
// serialized through one thread, unlike the broker's per-client queues.
package reflector

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// spinFor busy-waits for d in the calling goroutine — the cost must
// occupy the dispatch thread, exactly like the modelled JMF overhead.
func spinFor(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) { //nolint:revive // intentional spin
	}
}

// Config parameterises the baseline.
type Config struct {
	// ReprocessRTP enables the per-receiver RTP parse + re-marshal that
	// JMF performed. Disabling it is an ablation knob. Default true via
	// New.
	ReprocessRTP bool
	// ProcessingCost adds emulated per-receiver-send CPU time on top of
	// the work Go actually performs, standing in for the JVM-era
	// RTPManager overhead (synchronized buffers, object churn, GC
	// pressure) that a 2026 Go port cannot reproduce natively. It burns
	// time in the single dispatch thread. See DESIGN.md §7.
	ProcessingCost time.Duration
}

// Reflector is a single-threaded unicast RTP reflector.
type Reflector struct {
	cfg Config

	mu        sync.Mutex
	receivers []transport.Conn
	sources   []transport.Conn
	closed    bool

	in  atomic.Uint64
	out atomic.Uint64

	wg sync.WaitGroup
}

// New creates a reflector with JMF-faithful defaults.
func New() *Reflector {
	return NewWithConfig(Config{ReprocessRTP: true})
}

// NewWithConfig creates a reflector with explicit knobs.
func NewWithConfig(cfg Config) *Reflector {
	return &Reflector{cfg: cfg}
}

// AddReceiver registers a conn that will receive every reflected packet.
func (r *Reflector) AddReceiver(c transport.Conn) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("reflector: closed")
	}
	r.receivers = append(r.receivers, c)
	return nil
}

// ReceiverCount returns the number of registered receivers.
func (r *Reflector) ReceiverCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.receivers)
}

// ServeSource consumes events from src and reflects each one, returning
// when src closes. This is the single dispatch thread.
func (r *Reflector) ServeSource(src transport.Conn) {
	for {
		e, err := src.Recv()
		if err != nil {
			return
		}
		r.in.Add(1)
		r.reflect(e)
	}
}

// ServeSourceAsync runs ServeSource on a goroutine owned by the
// reflector; Stop closes the source conn and waits for the loop.
func (r *Reflector) ServeSourceAsync(src transport.Conn) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		src.Close()
		return
	}
	r.sources = append(r.sources, src)
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.ServeSource(src)
	}()
}

// reflect fans one event out to all receivers, sequentially and
// synchronously — the defining behaviour of the baseline.
func (r *Reflector) reflect(e *event.Event) {
	r.mu.Lock()
	receivers := r.receivers
	r.mu.Unlock()
	for _, c := range receivers {
		dup := e.Clone() // JMF cloned the packet per receiver
		if r.cfg.ReprocessRTP && dup.Kind == event.KindRTP {
			var p rtp.Packet
			if err := p.Unmarshal(dup.Payload); err == nil {
				if b, err := p.Marshal(); err == nil {
					dup.Payload = b
				}
			}
		}
		if r.cfg.ProcessingCost > 0 {
			spinFor(r.cfg.ProcessingCost)
		}
		if err := c.Send(dup); err != nil {
			continue // a dead receiver does not stop the others
		}
		r.out.Add(1)
	}
}

// Stats returns packets received from sources and packets sent to
// receivers.
func (r *Reflector) Stats() (in, out uint64) {
	return r.in.Load(), r.out.Load()
}

// Stop closes all receiver and source conns and waits for async source
// loops.
func (r *Reflector) Stop() {
	r.mu.Lock()
	receivers := r.receivers
	sources := r.sources
	r.receivers = nil
	r.sources = nil
	r.closed = true
	r.mu.Unlock()
	for _, c := range receivers {
		c.Close()
	}
	for _, c := range sources {
		c.Close()
	}
	r.wg.Wait()
}

// ConnPublisher adapts a raw transport.Conn into a media.Publisher,
// stamping event identity like a broker client would.
type ConnPublisher struct {
	conn   transport.Conn
	source string
	nextID atomic.Uint64
}

// NewConnPublisher wraps conn with publisher identity source.
func NewConnPublisher(conn transport.Conn, source string) *ConnPublisher {
	return &ConnPublisher{conn: conn, source: source}
}

// PublishEvent stamps identity and sends the event.
func (p *ConnPublisher) PublishEvent(e *event.Event) error {
	e.Source = p.source
	e.ID = p.nextID.Add(1)
	return p.conn.Send(e)
}
