package metrics

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Series is an indexed sequence of float64 samples, used for per-packet
// traces such as "delay of packet #k averaged over 12 receivers". Samples
// recorded at the same index are averaged. Series is safe for concurrent
// use.
type Series struct {
	mu    sync.Mutex
	name  string
	sums  []float64
	cnts  []uint32
	limit int
}

// NewSeries creates a named series holding at most limit indexed points
// (indices >= limit are dropped). limit must be positive.
func NewSeries(name string, limit int) *Series {
	if limit <= 0 {
		panic("metrics: series limit must be positive")
	}
	return &Series{name: name, limit: limit}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Record adds a sample for index i. Samples with negative indices or
// indices at or beyond the limit are ignored.
func (s *Series) Record(i int, v float64) {
	if i < 0 || i >= s.limit {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i >= len(s.sums) {
		grow := i + 1
		ns := make([]float64, grow)
		copy(ns, s.sums)
		s.sums = ns
		nc := make([]uint32, grow)
		copy(nc, s.cnts)
		s.cnts = nc
	}
	s.sums[i] += v
	s.cnts[i]++
}

// Len returns the number of indices with at least one sample slot allocated.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sums)
}

// Values returns the per-index averages. Indices with no samples yield NaN-free
// zeros and are reported in the second return as false.
func (s *Series) Values() (avgs []float64, present []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	avgs = make([]float64, len(s.sums))
	present = make([]bool, len(s.sums))
	for i := range s.sums {
		if s.cnts[i] > 0 {
			avgs[i] = s.sums[i] / float64(s.cnts[i])
			present[i] = true
		}
	}
	return avgs, present
}

// Mean returns the grand mean over all recorded samples (not over indices).
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	var n uint64
	for i := range s.sums {
		sum += s.sums[i]
		n += uint64(s.cnts[i])
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteTSV writes "index<TAB>value" lines for every index that has samples,
// suitable for gnuplot.
func (s *Series) WriteTSV(w io.Writer) error {
	avgs, present := s.Values()
	for i, ok := range present {
		if !ok {
			continue
		}
		if _, err := fmt.Fprintf(w, "%d\t%.4f\n", i, avgs[i]); err != nil {
			return fmt.Errorf("metrics: writing series %q: %w", s.name, err)
		}
	}
	return nil
}

// Registry is a named collection of metrics used to assemble reports.
// The zero value is ready to use.
type Registry struct {
	mu     sync.Mutex
	hists  map[string]*Histogram
	counts map[string]*Counter
	gauges map[string]*Gauge
	series map[string]*Series
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewLatencyHistogram()
		r.hists[name] = h
	}
	return h
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counts == nil {
		r.counts = make(map[string]*Counter)
	}
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DropGauge removes the named gauge from the registry (a no-op when it
// does not exist). Components that publish per-entity gauges call this
// when the entity goes away so the registry stays bounded by live
// entities.
func (r *Registry) DropGauge(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.gauges, name)
}

// Series returns the named series, creating it with the given limit on
// first use. Subsequent calls ignore limit.
func (r *Registry) Series(name string, limit int) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.series == nil {
		r.series = make(map[string]*Series)
	}
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name, limit)
		r.series[name] = s
	}
	return s
}

// Report renders all registered metrics as a human-readable block.
func (r *Registry) Report() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counts))
	for n := range r.counts {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-32s %d\n", n, r.counts[n].Value())
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge   %-32s %d\n", n, r.gauges[n].Value())
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "hist    %-32s %s\n", n, r.hists[n].Snapshot())
	}
	names = names[:0]
	for n := range r.series {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "series  %-32s points=%d mean=%.2f\n", n, r.series[n].Len(), r.series[n].Mean())
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
