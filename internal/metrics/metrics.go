// Package metrics provides the measurement primitives used by the
// Global-MMCS benchmark harness and by the runtime components themselves:
// counters, gauges, streaming mean/variance, histograms with percentile
// queries, and bounded time series for per-packet traces such as the
// Figure 3 delay/jitter curves.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value safe for concurrent use.
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Welford accumulates streaming mean and variance using Welford's
// algorithm. The zero value is ready to use. Not safe for concurrent use;
// guard externally or use one per goroutine.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds a sample.
func (w *Welford) Observe(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples observed.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or 0 with no samples.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observed sample, or 0 with no samples.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observed sample, or 0 with no samples.
func (w *Welford) Max() float64 { return w.max }

// Merge folds other into w so that w summarises both sample sets.
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.mean += delta * float64(other.n) / float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Histogram records float64 samples into exponential buckets and answers
// approximate percentile queries. It is safe for concurrent observation.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; implicit +Inf final bucket
	counts  []uint64  // len(bounds)+1
	welford Welford
}

// NewHistogram creates a histogram with exponential bucket upper bounds
// start, start*factor, ... for n buckets. start must be > 0 and factor > 1.
func NewHistogram(start, factor float64, n int) *Histogram {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("metrics: invalid histogram shape start=%v factor=%v n=%d", start, factor, n))
	}
	bounds := make([]float64, n)
	b := start
	for i := range bounds {
		bounds[i] = b
		b *= factor
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, n+1)}
}

// NewLatencyHistogram returns a histogram tuned for latencies in
// milliseconds, spanning 10µs..~160s.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(0.01, 1.35, 48)
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.welford.Observe(x)
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.welford.Count()
}

// Mean returns the exact sample mean.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.welford.Mean()
}

// Stddev returns the exact sample standard deviation.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.welford.Stddev()
}

// Min returns the smallest sample.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.welford.Min()
}

// Max returns the largest sample.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.welford.Max()
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) using
// linear interpolation inside the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	total := h.welford.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.welford.Max()
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			v := lo + frac*(hi-lo)
			if v > h.welford.Max() {
				v = h.welford.Max()
			}
			if v < h.welford.Min() {
				v = h.welford.Min()
			}
			return v
		}
		cum = next
	}
	return h.welford.Max()
}

// Snapshot summarises the histogram.
type Snapshot struct {
	Count               uint64
	Mean, Stddev        float64
	Min, Max            float64
	P50, P90, P99, P999 float64
}

// Snapshot returns a point-in-time summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Stddev: h.Stddev(),
		Min:    h.Min(),
		Max:    h.Max(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.Count, s.Mean, s.Stddev, s.Min, s.P50, s.P90, s.P99, s.Max)
}
