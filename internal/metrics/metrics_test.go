package metrics

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if got := c.Value(); got != 0 {
		t.Fatalf("zero counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 1000 {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if got, want := w.Mean(), 5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got, want := w.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("variance = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var all, a, b Welford
	for i := range 1000 {
		x := rng.NormFloat64()*10 + 50
		all.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(&b)
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-6 {
		t.Errorf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Count() != all.Count() {
		t.Errorf("merged count = %d, want %d", a.Count(), all.Count())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Observe(3)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 3 {
		t.Fatalf("merge with empty changed stats: n=%d mean=%v", a.Count(), a.Mean())
	}
	b.Merge(&a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 3 {
		t.Fatalf("merge into empty: n=%d mean=%v", b.Count(), b.Mean())
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewLatencyHistogram()
	for _, x := range []float64{1, 2, 3, 4} {
		h.Observe(x)
	}
	if got := h.Mean(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("mean = %v, want 2.5", got)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewPCG(7, 7))
	for range 10000 {
		h.Observe(rng.Float64() * 100)
	}
	p50 := h.Quantile(0.5)
	if p50 < 35 || p50 > 65 {
		t.Errorf("p50 = %v, want within [35,65] for uniform(0,100)", p50)
	}
	if q0 := h.Quantile(0); q0 < h.Min() {
		t.Errorf("q0 = %v < min %v", q0, h.Min())
	}
	if q1 := h.Quantile(1); q1 > h.Max() {
		t.Errorf("q1 = %v > max %v", q1, h.Max())
	}
	// Out-of-range q is clamped.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Error("clamped quantiles out of order")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewPCG(3, 9))
	for range 5000 {
		h.Observe(math.Abs(rng.NormFloat64()) * 20)
	}
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile(%v) = %v < previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with bad shape did not panic")
		}
	}()
	NewHistogram(0, 2, 10)
}

// Property: for any set of samples, count equals observations and
// min <= mean <= max.
func TestHistogramPropertyMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewLatencyHistogram()
		for _, r := range raw {
			h.Observe(float64(r) / 16)
		}
		if h.Count() != uint64(len(raw)) {
			return false
		}
		return h.Min() <= h.Mean()+1e-9 && h.Mean() <= h.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(5)
	s := h.Snapshot().String()
	if !strings.Contains(s, "n=1") {
		t.Errorf("snapshot string %q missing count", s)
	}
}

func TestSeriesAveragesAtIndex(t *testing.T) {
	s := NewSeries("delay", 100)
	s.Record(3, 10)
	s.Record(3, 20)
	s.Record(5, 7)
	avgs, present := s.Values()
	if len(avgs) != 6 {
		t.Fatalf("len = %d, want 6", len(avgs))
	}
	if !present[3] || avgs[3] != 15 {
		t.Errorf("index 3 = %v (present=%v), want 15", avgs[3], present[3])
	}
	if present[4] {
		t.Error("index 4 should be absent")
	}
	if !present[5] || avgs[5] != 7 {
		t.Errorf("index 5 = %v, want 7", avgs[5])
	}
}

func TestSeriesIgnoresOutOfRange(t *testing.T) {
	s := NewSeries("x", 4)
	s.Record(-1, 5)
	s.Record(4, 5)
	s.Record(100, 5)
	if s.Len() != 0 {
		t.Fatalf("series recorded out-of-range samples: len=%d", s.Len())
	}
}

func TestSeriesMean(t *testing.T) {
	s := NewSeries("x", 10)
	s.Record(0, 1)
	s.Record(1, 2)
	s.Record(1, 4) // grand mean over samples: (1+2+4)/3
	if got, want := s.Mean(), 7.0/3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestSeriesWriteTSV(t *testing.T) {
	s := NewSeries("x", 10)
	s.Record(0, 1.5)
	s.Record(2, 2.25)
	var buf bytes.Buffer
	if err := s.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "0\t1.5000\n2\t2.2500\n"
	if buf.String() != want {
		t.Fatalf("tsv = %q, want %q", buf.String(), want)
	}
}

func TestRegistryReusesInstruments(t *testing.T) {
	var r Registry
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter not reused")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("histogram not reused")
	}
	if r.Series("s", 10) != r.Series("s", 99) {
		t.Error("series not reused")
	}
}

func TestRegistryReport(t *testing.T) {
	var r Registry
	r.Counter("pkts").Add(3)
	r.Histogram("delay").Observe(1)
	r.Series("trace", 8).Record(0, 1)
	r.Gauge("depth").Set(7)
	rep := r.Report()
	for _, want := range []string{"pkts", "delay", "trace", "gauge   depth", "7"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestRegistryGauge(t *testing.T) {
	var r Registry
	g := r.Gauge("window")
	g.Set(42)
	if r.Gauge("window") != g {
		t.Fatal("gauge not reused by name")
	}
	if r.Gauge("window").Value() != 42 {
		t.Fatalf("gauge = %d, want 42", r.Gauge("window").Value())
	}
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge after Add = %d, want 40", g.Value())
	}
}
