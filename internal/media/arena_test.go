package media

import (
	"runtime"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
)

// makeArenaEvent marshals an RTP packet for seq into the arena chunk at
// off and wraps it in an event whose payload aliases the chunk — the
// shape the in-place TCP receive path produces.
func makeArenaEvent(t *testing.T, chunk []byte, off int, seq uint16) (*event.Event, int) {
	t.Helper()
	p := &rtp.Packet{
		PayloadType:    rtp.PayloadPCMU,
		SequenceNumber: seq,
		Timestamp:      uint32(seq) * 160,
		SSRC:           0x1234,
		Payload:        fillPayload(64, seq),
	}
	wire, err := p.AppendMarshal(chunk[off:off:len(chunk)])
	if err != nil {
		t.Fatal(err)
	}
	e := &event.Event{
		Topic:     "/xgsp/session/1/audio",
		Kind:      event.KindRTP,
		TTL:       1,
		Timestamp: time.Now().UnixNano(),
		Payload:   wire,
	}
	return e, off + len(wire)
}

// TestReorderBufferDetachesFromArena is the leak-shaped regression for
// the arena-lifetime audit: packets parked in the reorder (jitter)
// buffer must deep-copy their payloads, so a 256 KiB receive chunk is
// released as soon as its events are consumed — even while re-sequenced
// packets from it are still waiting for a gap to fill.
func TestReorderBufferDetachesFromArena(t *testing.T) {
	r := NewReceiver(ReceiverConfig{
		ClockRate:      rtp.AudioClockRate,
		ReorderDepth:   8,
		VerifyPayloads: true,
	})

	chunk := new([256 << 10]byte)
	finalized := make(chan struct{})
	runtime.SetFinalizer(chunk, func(*[256 << 10]byte) { close(finalized) })

	// Seq 1 establishes the base and is delivered immediately; 3, 4 and
	// 5 park in the reorder buffer behind the missing 2.
	off := 0
	var e *event.Event
	for _, seq := range []uint16{1, 3, 4, 5} {
		e, off = makeArenaEvent(t, chunk[:], off, seq)
		r.HandleEvent(e)
	}
	if got := r.Snapshot().Received; got != 1 {
		t.Fatalf("received = %d before the gap filled, want 1", got)
	}

	// Scribble over the chunk: parked packets must hold their own
	// copies, not views of this memory.
	for i := range chunk {
		chunk[i] = 0xFF
	}

	// Drop every reference to the chunk. If the reorder buffer still
	// aliased it, the finalizer could never run.
	e = nil
	_ = e
	chunk = nil
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-finalized:
		case <-time.After(10 * time.Millisecond):
			select {
			case <-deadline:
				t.Fatal("arena chunk still referenced: reorder buffer pins receive memory")
			default:
			}
			continue
		}
		break
	}

	// Fill the gap from a fresh buffer: 2..5 drain in order, and the
	// parked packets' payloads must still verify — proving the earlier
	// scribble hit only the abandoned chunk, not the retained copies.
	fresh := make([]byte, 1<<10)
	e2, _ := makeArenaEvent(t, fresh, 0, 2)
	r.HandleEvent(e2)
	snap := r.Snapshot()
	if snap.Received != 5 {
		t.Fatalf("received = %d after gap filled, want 5", snap.Received)
	}
	if snap.Corrupted != 0 {
		t.Fatalf("corrupted = %d: parked packets lost their payload copies", snap.Corrupted)
	}
}

// TestReceiverFlushDrainsReorderTail asserts Flush accounts packets
// parked behind a gap that never fills once the stream ends.
func TestReceiverFlushDrainsReorderTail(t *testing.T) {
	r := NewReceiver(ReceiverConfig{
		ClockRate:    rtp.AudioClockRate,
		ReorderDepth: 8,
	})
	buf := make([]byte, 4<<10)
	off := 0
	var e *event.Event
	for _, seq := range []uint16{10, 12, 13} { // 11 never arrives
		e, off = makeArenaEvent(t, buf, off, seq)
		r.HandleEvent(e)
	}
	if got := r.Snapshot().Received; got != 1 {
		t.Fatalf("received = %d, want 1", got)
	}
	r.Flush()
	if got := r.Snapshot().Received; got != 3 {
		t.Fatalf("received after flush = %d, want 3", got)
	}
}
