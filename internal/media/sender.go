package media

import (
	"fmt"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
)

// Publisher is the sink a Sender publishes wrapped RTP events into.
// broker.Client satisfies it.
type Publisher interface {
	PublishEvent(e *event.Event) error
}

// Sender paces a media source onto a topic in real time, wrapping each
// RTP packet in a KindRTP event whose Timestamp carries the send
// wall-clock instant used for one-way delay measurement downstream.
type Sender struct {
	pub   Publisher
	topic string
}

// NewSender creates a sender publishing to topic.
func NewSender(pub Publisher, topic string) *Sender {
	return &Sender{pub: pub, topic: topic}
}

// SendVideo streams frames from v until the requested number of packets
// have been sent or done closes. It returns the number sent.
func (s *Sender) SendVideo(v *VideoSource, packets int, done <-chan struct{}) (int, error) {
	interval := time.Duration(v.FrameIntervalNanos())
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	sent := 0
	for sent < packets {
		for _, p := range v.NextFrame() {
			if sent >= packets {
				break
			}
			if err := s.publishRTP(p.Marshal()); err != nil {
				return sent, err
			}
			sent++
		}
		select {
		case <-ticker.C:
		case <-done:
			return sent, nil
		}
	}
	return sent, nil
}

// SendAudio streams packets from a until count packets are sent or done
// closes. It returns the number sent.
func (s *Sender) SendAudio(a *AudioSource, packets int, done <-chan struct{}) (int, error) {
	ticker := time.NewTicker(time.Duration(a.FrameIntervalNanos()))
	defer ticker.Stop()
	sent := 0
	for sent < packets {
		if err := s.publishRTP(a.NextPacket().Marshal()); err != nil {
			return sent, err
		}
		sent++
		select {
		case <-ticker.C:
		case <-done:
			return sent, nil
		}
	}
	return sent, nil
}

func (s *Sender) publishRTP(b []byte, err error) error {
	if err != nil {
		return fmt.Errorf("media: marshalling rtp: %w", err)
	}
	e := event.New(s.topic, event.KindRTP, b)
	return s.pub.PublishEvent(e)
}
