package media

import (
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
)

func TestVideoSourceBitrate(t *testing.T) {
	v := NewVideoSource(VideoConfig{})
	var bytes int
	const seconds = 10
	frames := v.Config().FPS * seconds
	for range frames {
		for _, p := range v.NextFrame() {
			bytes += len(p.Payload)
		}
	}
	bps := float64(bytes) * 8 / seconds
	if bps < 450_000 || bps > 750_000 {
		t.Fatalf("measured bitrate = %.0f bps, want ~600k", bps)
	}
}

func TestVideoSourceDeterministic(t *testing.T) {
	a := NewVideoSource(VideoConfig{Seed: 7})
	b := NewVideoSource(VideoConfig{Seed: 7})
	for range 50 {
		fa, fb := a.NextFrame(), b.NextFrame()
		if len(fa) != len(fb) {
			t.Fatal("frame packet counts differ")
		}
		for i := range fa {
			if fa[i].SequenceNumber != fb[i].SequenceNumber || len(fa[i].Payload) != len(fb[i].Payload) {
				t.Fatal("frames differ between equal seeds")
			}
		}
	}
	c := NewVideoSource(VideoConfig{Seed: 8})
	sameSizes := true
	for range 50 {
		fa, fc := a.NextFrame(), c.NextFrame()
		if len(fa) != len(fc) || len(fa[0].Payload) != len(fc[0].Payload) {
			sameSizes = false
			break
		}
	}
	if sameSizes {
		t.Error("different seeds produced identical frame sizes")
	}
}

func TestVideoSourceSequenceAndTimestamps(t *testing.T) {
	v := NewVideoSource(VideoConfig{})
	var lastSeq uint16
	first := true
	for n := range 10 {
		pkts := v.NextFrame()
		wantTS := uint32(n) * uint32(rtp.VideoClockRate/v.Config().FPS)
		for i, p := range pkts {
			if p.Timestamp != wantTS {
				t.Fatalf("frame %d ts = %d, want %d", n, p.Timestamp, wantTS)
			}
			if !first && p.SequenceNumber != lastSeq+1 {
				t.Fatalf("seq jump: %d -> %d", lastSeq, p.SequenceNumber)
			}
			lastSeq = p.SequenceNumber
			first = false
			isLast := i == len(pkts)-1
			if p.Marker != isLast {
				t.Fatalf("marker on packet %d of %d = %v", i, len(pkts), p.Marker)
			}
			if len(p.Payload) > v.Config().MTU {
				t.Fatalf("payload %d exceeds MTU", len(p.Payload))
			}
		}
	}
}

func TestVideoSourceIFramesLarger(t *testing.T) {
	v := NewVideoSource(VideoConfig{})
	iFrame := v.NextFrame() // frame 0 is an I-frame
	pFrame := v.NextFrame()
	iBytes, pBytes := 0, 0
	for _, p := range iFrame {
		iBytes += len(p.Payload)
	}
	for _, p := range pFrame {
		pBytes += len(p.Payload)
	}
	if iBytes <= pBytes {
		t.Fatalf("I-frame %dB not larger than P-frame %dB", iBytes, pBytes)
	}
}

func TestVideoPacketsPerSecond(t *testing.T) {
	v := NewVideoSource(VideoConfig{})
	pps := v.PacketsPerSecond()
	if pps < 40 || pps > 120 {
		t.Fatalf("pps = %v, want 40..120 for 600kbps/1200B", pps)
	}
}

func TestAudioSource(t *testing.T) {
	a := NewAudioSource(AudioConfig{})
	if a.PacketsPerSecond() != 50 {
		t.Fatalf("pps = %v, want 50", a.PacketsPerSecond())
	}
	p0 := a.NextPacket()
	p1 := a.NextPacket()
	if len(p0.Payload) != 160 {
		t.Fatalf("payload = %dB, want 160", len(p0.Payload))
	}
	if !p0.Marker || p1.Marker {
		t.Error("marker should be set only on first packet")
	}
	if p1.Timestamp-p0.Timestamp != 160 {
		t.Fatalf("ts step = %d, want 160", p1.Timestamp-p0.Timestamp)
	}
	if p1.SequenceNumber != p0.SequenceNumber+1 {
		t.Fatal("sequence not contiguous")
	}
}

func TestPayloadVerification(t *testing.T) {
	a := NewAudioSource(AudioConfig{})
	p := a.NextPacket()
	if err := VerifyPayload(p); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	p.Payload[10] ^= 0xFF
	if err := VerifyPayload(p); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	p2 := a.NextPacket()
	p2.SequenceNumber += 7
	if err := VerifyPayload(p2); err == nil {
		t.Fatal("mismatched seq accepted")
	}
}

// chanPublisher collects published events for tests.
type chanPublisher struct {
	ch chan *event.Event
}

func (c *chanPublisher) PublishEvent(e *event.Event) error {
	c.ch <- e
	return nil
}

func TestSenderReceiverEndToEnd(t *testing.T) {
	pub := &chanPublisher{ch: make(chan *event.Event, 1000)}
	sender := NewSender(pub, "/media/test/video")
	v := NewVideoSource(VideoConfig{FPS: 100}) // fast frames for test speed

	done := make(chan struct{})
	const packets = 60
	go func() {
		defer close(pub.ch)
		if _, err := sender.SendVideo(v, packets, done); err != nil {
			t.Errorf("SendVideo: %v", err)
		}
	}()

	delays := metrics.NewSeries("delay", 1000)
	jitters := metrics.NewSeries("jitter", 1000)
	r := NewReceiver(ReceiverConfig{
		ClockRate:      rtp.VideoClockRate,
		DelaySeries:    delays,
		JitterSeries:   jitters,
		VerifyPayloads: true,
	})
	r.Drain(pub.ch, nil)

	snap := r.Snapshot()
	if snap.Received != packets {
		t.Fatalf("received %d, want %d", snap.Received, packets)
	}
	if snap.Corrupted != 0 {
		t.Fatalf("corrupted = %d", snap.Corrupted)
	}
	if snap.Lost != 0 {
		t.Fatalf("lost = %d", snap.Lost)
	}
	if snap.MeanDelayMs < 0 || snap.MeanDelayMs > 100 {
		t.Fatalf("mean delay = %v ms, implausible in-proc", snap.MeanDelayMs)
	}
	if delays.Len() == 0 || jitters.Len() == 0 {
		t.Fatal("series not recorded")
	}
}

func TestSenderAudioPacing(t *testing.T) {
	pub := &chanPublisher{ch: make(chan *event.Event, 100)}
	sender := NewSender(pub, "/media/test/audio")
	a := NewAudioSource(AudioConfig{FrameMillis: 10})
	start := time.Now()
	const packets = 10
	if _, err := sender.SendAudio(a, packets, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 10 packets at 10ms spacing: at least ~90ms.
	if elapsed < 80*time.Millisecond {
		t.Fatalf("pacing too fast: %v", elapsed)
	}
	close(pub.ch)
	count := 0
	for range pub.ch {
		count++
	}
	if count != packets {
		t.Fatalf("published %d, want %d", count, packets)
	}
}

func TestSenderStopsOnDone(t *testing.T) {
	pub := &chanPublisher{ch: make(chan *event.Event, 10000)}
	sender := NewSender(pub, "/t/x")
	a := NewAudioSource(AudioConfig{})
	done := make(chan struct{})
	close(done)
	sent, err := sender.SendAudio(a, 1000, done)
	if err != nil {
		t.Fatal(err)
	}
	if sent > 2 {
		t.Fatalf("sent %d after done closed, want <= 2", sent)
	}
}

func TestReceiverIgnoresNonRTP(t *testing.T) {
	r := NewReceiver(ReceiverConfig{ClockRate: rtp.AudioClockRate})
	r.HandleEvent(event.New("/x", event.KindChat, []byte("hello")))
	if snap := r.Snapshot(); snap.Received != 0 {
		t.Fatal("chat event counted as media")
	}
}

func TestReceiverCountsCorruptRTP(t *testing.T) {
	r := NewReceiver(ReceiverConfig{ClockRate: rtp.AudioClockRate})
	r.HandleEvent(event.New("/x", event.KindRTP, []byte{1, 2, 3}))
	if snap := r.Snapshot(); snap.Corrupted != 1 {
		t.Fatalf("corrupted = %d, want 1", snap.Corrupted)
	}
}

func TestReceiverDetectsLoss(t *testing.T) {
	r := NewReceiver(ReceiverConfig{ClockRate: rtp.AudioClockRate})
	a := NewAudioSource(AudioConfig{})
	for i := range 20 {
		p := a.NextPacket()
		if i%5 == 2 {
			continue // drop
		}
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		r.HandleEvent(event.New("/x", event.KindRTP, b))
	}
	snap := r.Snapshot()
	if snap.Lost == 0 {
		t.Fatal("loss not detected")
	}
	if snap.LossRate < 0.1 || snap.LossRate > 0.3 {
		t.Fatalf("loss rate = %v, want ~0.2", snap.LossRate)
	}
}

func TestBuildReceiverReport(t *testing.T) {
	r := NewReceiver(ReceiverConfig{ClockRate: rtp.AudioClockRate})
	a := NewAudioSource(AudioConfig{})
	for i := range 20 {
		p := a.NextPacket()
		if i == 7 {
			continue // one loss
		}
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		r.HandleEvent(event.New("/x", event.KindRTP, b))
	}
	rr := r.BuildReceiverReport(111, 222)
	if rr.SSRC != 111 || len(rr.Reports) != 1 {
		t.Fatalf("rr = %+v", rr)
	}
	rb := rr.Reports[0]
	if rb.SSRC != 222 || rb.CumulativeLost != 1 || rb.HighestSeq != 19 {
		t.Fatalf("block = %+v", rb)
	}
	// The report must marshal as valid RTCP.
	b, err := rr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var got rtp.ReceiverReport
	if err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.Reports[0].CumulativeLost != 1 {
		t.Fatalf("roundtrip block = %+v", got.Reports[0])
	}
}
