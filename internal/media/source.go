// Package media provides the deterministic media workloads and measuring
// receivers used by the Global-MMCS examples and the benchmark harness.
// The video source reproduces the paper's 600 Kbps test stream; the audio
// source is a 64 Kbps G.711-style stream. Receivers measure one-way delay
// and RFC 3550 interarrival jitter per packet, which is exactly what
// Figure 3 of the paper plots.
package media

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"github.com/globalmmcs/globalmmcs/internal/rtp"
)

// VideoConfig shapes a synthetic video stream.
type VideoConfig struct {
	// BitrateBps is the target bitrate. Default 600_000 (the paper's
	// test stream).
	BitrateBps int
	// FPS is the frame rate. Default 25.
	FPS int
	// MTU is the maximum RTP payload per packet. Default 1200.
	MTU int
	// IFrameInterval is the GOP length: every Nth frame is an I-frame
	// roughly 3x the size of a P-frame. Default 12.
	IFrameInterval int
	// SSRC identifies the stream. Default 0x600D5EED.
	SSRC uint32
	// Seed drives deterministic frame-size variation. Default 1.
	Seed uint64
}

func (c VideoConfig) withDefaults() VideoConfig {
	if c.BitrateBps <= 0 {
		c.BitrateBps = 600_000
	}
	if c.FPS <= 0 {
		c.FPS = 25
	}
	if c.MTU <= 0 {
		c.MTU = 1200
	}
	if c.IFrameInterval <= 0 {
		c.IFrameInterval = 12
	}
	if c.SSRC == 0 {
		c.SSRC = 0x600D5EED
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// VideoSource deterministically generates the RTP packets of a synthetic
// video stream: I-frames every IFrameInterval frames, sized so the mean
// bitrate matches BitrateBps, each frame packetized at the MTU with the
// marker bit on the final packet. Not safe for concurrent use.
type VideoSource struct {
	cfg     VideoConfig
	rng     *rand.Rand
	nextSeq uint16
	frameN  int
	pSize   int
	iSize   int
}

// NewVideoSource creates a video source.
func NewVideoSource(cfg VideoConfig) *VideoSource {
	cfg = cfg.withDefaults()
	bytesPerFrame := cfg.BitrateBps / 8 / cfg.FPS
	// One I-frame (3x) plus N-1 P-frames per GOP must average to
	// bytesPerFrame: (3P + (N-1)P)/N = bytesPerFrame.
	n := cfg.IFrameInterval
	p := bytesPerFrame * n / (n + 2)
	return &VideoSource{
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xABCD)),
		pSize: p,
		iSize: 3 * p,
	}
}

// Config returns the effective configuration.
func (v *VideoSource) Config() VideoConfig { return v.cfg }

// ClockRate returns the RTP timestamp rate.
func (v *VideoSource) ClockRate() int { return rtp.VideoClockRate }

// PacketsPerSecond estimates the mean packet rate of the stream.
func (v *VideoSource) PacketsPerSecond() float64 {
	perGOP := 0
	n := v.cfg.IFrameInterval
	perGOP += (v.iSize + v.cfg.MTU - 1) / v.cfg.MTU
	perGOP += (n - 1) * ((v.pSize + v.cfg.MTU - 1) / v.cfg.MTU)
	return float64(perGOP) * float64(v.cfg.FPS) / float64(n)
}

// NextFrame returns the RTP packets of the next frame. Payload bytes are
// deterministic and carry the sequence number for integrity checking.
func (v *VideoSource) NextFrame() []*rtp.Packet {
	size := v.pSize
	if v.frameN%v.cfg.IFrameInterval == 0 {
		size = v.iSize
	}
	// ±20% deterministic variation.
	size += int(v.rng.Int64N(int64(size)/5+1)) - size/10
	if size < 64 {
		size = 64
	}
	ts := uint32(v.frameN) * uint32(rtp.VideoClockRate/v.cfg.FPS)
	var pkts []*rtp.Packet
	for off := 0; off < size; off += v.cfg.MTU {
		n := min(v.cfg.MTU, size-off)
		p := &rtp.Packet{
			PayloadType:    rtp.PayloadH261,
			SequenceNumber: v.nextSeq,
			Timestamp:      ts,
			SSRC:           v.cfg.SSRC,
			Marker:         off+n >= size,
			Payload:        fillPayload(n, v.nextSeq),
		}
		v.nextSeq++
		pkts = append(pkts, p)
	}
	v.frameN++
	return pkts
}

// FrameInterval returns the wall-clock duration of one frame in
// nanoseconds.
func (v *VideoSource) FrameIntervalNanos() int64 {
	return int64(1e9) / int64(v.cfg.FPS)
}

// AudioConfig shapes a synthetic audio stream.
type AudioConfig struct {
	// BitrateBps is the codec rate. Default 64_000 (G.711).
	BitrateBps int
	// FrameMillis is the packetization interval. Default 20.
	FrameMillis int
	// SSRC identifies the stream. Default 0xA0D105EC.
	SSRC uint32
}

func (c AudioConfig) withDefaults() AudioConfig {
	if c.BitrateBps <= 0 {
		c.BitrateBps = 64_000
	}
	if c.FrameMillis <= 0 {
		c.FrameMillis = 20
	}
	if c.SSRC == 0 {
		c.SSRC = 0xA0D105EC
	}
	return c
}

// AudioSource deterministically generates a G.711-style audio stream:
// fixed-size packets at a fixed interval. Not safe for concurrent use.
type AudioSource struct {
	cfg     AudioConfig
	payload int
	tsStep  uint32
	nextSeq uint16
	n       int
}

// NewAudioSource creates an audio source.
func NewAudioSource(cfg AudioConfig) *AudioSource {
	cfg = cfg.withDefaults()
	payload := cfg.BitrateBps / 8 * cfg.FrameMillis / 1000
	return &AudioSource{
		cfg:     cfg,
		payload: payload,
		tsStep:  uint32(rtp.AudioClockRate * cfg.FrameMillis / 1000),
	}
}

// Config returns the effective configuration.
func (a *AudioSource) Config() AudioConfig { return a.cfg }

// ClockRate returns the RTP timestamp rate.
func (a *AudioSource) ClockRate() int { return rtp.AudioClockRate }

// PacketsPerSecond returns the packet rate.
func (a *AudioSource) PacketsPerSecond() float64 {
	return 1000 / float64(a.cfg.FrameMillis)
}

// FrameIntervalNanos returns the wall-clock duration of one packet.
func (a *AudioSource) FrameIntervalNanos() int64 {
	return int64(a.cfg.FrameMillis) * int64(1e6)
}

// NextPacket returns the next audio packet.
func (a *AudioSource) NextPacket() *rtp.Packet {
	p := &rtp.Packet{
		PayloadType:    rtp.PayloadPCMU,
		SequenceNumber: a.nextSeq,
		Timestamp:      uint32(a.n) * a.tsStep,
		SSRC:           a.cfg.SSRC,
		Marker:         a.n == 0,
		Payload:        fillPayload(a.payload, a.nextSeq),
	}
	a.nextSeq++
	a.n++
	return p
}

// fillPayload builds a deterministic payload of n bytes tagged with the
// sequence number so receivers can verify integrity.
func fillPayload(n int, seq uint16) []byte {
	if n < 2 {
		n = 2
	}
	b := make([]byte, n)
	binary.BigEndian.PutUint16(b, seq)
	for i := 2; i < n; i++ {
		b[i] = byte(i ^ int(seq))
	}
	return b
}

// VerifyPayload checks a payload produced by fillPayload against the
// packet's sequence number.
func VerifyPayload(p *rtp.Packet) error {
	if len(p.Payload) < 2 {
		return fmt.Errorf("media: payload too short (%d)", len(p.Payload))
	}
	if got := binary.BigEndian.Uint16(p.Payload); got != p.SequenceNumber {
		return fmt.Errorf("media: payload tag %d != seq %d", got, p.SequenceNumber)
	}
	for i := 2; i < len(p.Payload); i++ {
		if p.Payload[i] != byte(i^int(p.SequenceNumber)) {
			return fmt.Errorf("media: payload corrupted at byte %d", i)
		}
	}
	return nil
}
