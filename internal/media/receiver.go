package media

import (
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
)

// ReceiverConfig selects what a measuring receiver records.
type ReceiverConfig struct {
	// ClockRate is the RTP timestamp rate of the measured stream.
	// Required for the RFC 3550 jitter estimator.
	ClockRate int
	// DelaySeries, if set, records one-way delay in milliseconds indexed
	// by packet number (the Figure 3 top panel).
	DelaySeries *metrics.Series
	// JitterSeries, if set, records the running RFC 3550 jitter estimate
	// in milliseconds indexed by packet number (the Figure 3 bottom
	// panel).
	JitterSeries *metrics.Series
	// DelayHistogram, if set, accumulates delays for percentile queries.
	DelayHistogram *metrics.Histogram
	// VerifyPayloads enables integrity checking of fillPayload content.
	VerifyPayloads bool
	// ReorderDepth, when positive, re-sequences out-of-order arrivals
	// through a playout jitter buffer of that capacity before statistics
	// run. Buffered packets deep-copy their payloads: a decoded event
	// from the transport receive path aliases a shared arena chunk, and
	// a packet parked in the jitter buffer would otherwise pin the whole
	// chunk (up to 256 KiB) for as long as it waits.
	ReorderDepth int
}

// Receiver consumes wrapped RTP events and accumulates reception
// statistics. HandleEvent may be called from one goroutine at a time;
// snapshot accessors are safe to call concurrently.
type Receiver struct {
	cfg ReceiverConfig

	mu         sync.Mutex
	stats      rtp.SourceStats
	baseExt    uint32
	haveBase   bool
	received   uint64
	bytes      uint64
	corrupted  uint64
	delay      metrics.Welford
	lastActive time.Time

	// Reorder state (ReorderDepth > 0): the playout jitter buffer plus
	// per-packet arrival metadata keyed by sequence number.
	jb      *rtp.JitterBuffer
	pending map[uint16]arrival
}

// arrival is the reception metadata of a packet parked in the reorder
// buffer, so statistics computed after re-sequencing still reflect the
// true arrival instant.
type arrival struct {
	sentAt  int64
	arrived time.Time
}

// NewReceiver creates a measuring receiver.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	r := &Receiver{cfg: cfg}
	r.stats.ClockRate = cfg.ClockRate
	if cfg.ReorderDepth > 0 {
		r.jb = rtp.NewJitterBuffer(cfg.ReorderDepth)
		r.pending = make(map[uint16]arrival, cfg.ReorderDepth)
	}
	return r
}

// HandleEvent processes one wrapped RTP event.
func (r *Receiver) HandleEvent(e *event.Event) {
	if e.Kind != event.KindRTP {
		return
	}
	var p rtp.Packet
	if err := p.Unmarshal(e.Payload); err != nil {
		r.mu.Lock()
		r.corrupted++
		r.mu.Unlock()
		return
	}
	now := time.Now()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jb == nil {
		r.processLocked(&p, e.Timestamp, now)
		return
	}
	if r.jb.Push(&p) {
		r.pending[p.SequenceNumber] = arrival{sentAt: e.Timestamp, arrived: now}
	}
	for {
		q := r.jb.Pop()
		if q == nil {
			break
		}
		meta := r.pending[q.SequenceNumber]
		delete(r.pending, q.SequenceNumber)
		r.processLocked(q, meta.sentAt, meta.arrived)
	}
	// Detach any packet that stays parked behind a gap: its payload
	// aliases e.Payload, which may alias a transport arena chunk shared
	// with hundreds of other events, and a parked packet would pin the
	// whole chunk. Packets processed above were consumed synchronously,
	// so the common in-order case pays no copy.
	if _, parked := r.pending[p.SequenceNumber]; parked {
		p.Payload = append([]byte(nil), p.Payload...)
	}
}

// Flush drains any packets still parked in the reorder buffer (gaps
// that will never fill once the stream ends). No-op without reordering.
func (r *Receiver) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jb == nil {
		return
	}
	for {
		q := r.jb.Drain()
		if q == nil {
			return
		}
		meta := r.pending[q.SequenceNumber]
		delete(r.pending, q.SequenceNumber)
		r.processLocked(q, meta.sentAt, meta.arrived)
	}
}

// processLocked runs the measurement pipeline for one in-order packet.
// sentAt is the publish timestamp, arrived the reception instant.
func (r *Receiver) processLocked(p *rtp.Packet, sentAt int64, arrived time.Time) {
	delayMs := float64(arrived.UnixNano()-sentAt) / 1e6
	r.stats.Update(p.SequenceNumber, p.Timestamp, arrived)
	r.received++
	r.bytes += uint64(len(p.Payload))
	r.delay.Observe(delayMs)
	r.lastActive = arrived
	if r.cfg.VerifyPayloads {
		if err := VerifyPayload(p); err != nil {
			r.corrupted++
		}
	}
	ext := r.stats.ExtendedHighest()
	if !r.haveBase {
		r.haveBase = true
		r.baseExt = ext
	}
	idx := int(ext - r.baseExt)
	if r.cfg.DelaySeries != nil {
		r.cfg.DelaySeries.Record(idx, delayMs)
	}
	if r.cfg.JitterSeries != nil {
		jitterMs := float64(r.stats.JitterDuration()) / float64(time.Millisecond)
		r.cfg.JitterSeries.Record(idx, jitterMs)
	}
	if r.cfg.DelayHistogram != nil {
		r.cfg.DelayHistogram.Observe(delayMs)
	}
}

// Drain consumes events from ch until it closes or done closes.
func (r *Receiver) Drain(ch <-chan *event.Event, done <-chan struct{}) {
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return
			}
			r.HandleEvent(e)
		case <-done:
			return
		}
	}
}

// Snapshot is a point-in-time summary of a receiver.
type Snapshot struct {
	Received    uint64
	Bytes       uint64
	Corrupted   uint64
	Lost        uint64
	LossRate    float64
	MeanDelayMs float64
	MaxDelayMs  float64
	JitterMs    float64
}

// BuildReceiverReport assembles an RFC 3550 receiver report for the
// measured source, as an RTP client would periodically send. ownSSRC
// identifies this receiver; sourceSSRC the reported-on sender.
func (r *Receiver) BuildReceiverReport(ownSSRC, sourceSSRC uint32) *rtp.ReceiverReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &rtp.ReceiverReport{
		SSRC:    ownSSRC,
		Reports: []rtp.ReportBlock{r.stats.ReportBlock(sourceSSRC)},
	}
}

// Snapshot returns the receiver's statistics.
func (r *Receiver) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Snapshot{
		Received:    r.received,
		Bytes:       r.bytes,
		Corrupted:   r.corrupted,
		Lost:        r.stats.CumulativeLost(),
		LossRate:    r.stats.LossRate(),
		MeanDelayMs: r.delay.Mean(),
		MaxDelayMs:  r.delay.Max(),
		JitterMs:    float64(r.stats.JitterDuration()) / float64(time.Millisecond),
	}
}
