package streaming

import (
	"bufio"
	"fmt"
	"net"
	"net/textproto"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/globalmmcs/globalmmcs/internal/rtp"
)

// Player is a minimal RTSP client standing in for the Real and Windows
// Media players of §2.1: it DESCRIBEs a session, SETUPs tracks onto
// local UDP ports, PLAYs, and counts received RTP packets per track.
type Player struct {
	conn   net.Conn
	tp     *textproto.Reader
	url    string
	cseq   atomic.Uint32
	sessID string

	mu     sync.Mutex
	tracks map[int]*PlayerTrack

	wg sync.WaitGroup
}

// PlayerTrack is one receiving track.
type PlayerTrack struct {
	// ID is the RTSP track id.
	ID int
	// Kind is "audio" or "video".
	Kind string
	pc   net.PacketConn

	packets atomic.Uint64
	lastPT  atomic.Uint32
}

// Received returns the packets received so far.
func (t *PlayerTrack) Received() uint64 { return t.packets.Load() }

// LastPayloadType returns the payload type of the last packet.
func (t *PlayerTrack) LastPayloadType() uint8 { return uint8(t.lastPT.Load()) }

// DialPlayer connects to an rtsp:// URL of the form
// rtsp://host:port/sessionID.
func DialPlayer(url string) (*Player, error) {
	rest, ok := strings.CutPrefix(url, "rtsp://")
	if !ok {
		return nil, fmt.Errorf("streaming: not an rtsp url: %q", url)
	}
	hostport, _, _ := strings.Cut(rest, "/")
	conn, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("streaming: dialling %s: %w", hostport, err)
	}
	return &Player{
		conn:   conn,
		tp:     textproto.NewReader(bufio.NewReader(conn)),
		url:    url,
		tracks: make(map[int]*PlayerTrack),
	}, nil
}

// request performs one RTSP transaction.
func (p *Player) request(method, url string, headers map[string]string) (int, textproto.MIMEHeader, string, error) {
	cseq := p.cseq.Add(1)
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s\r\nCSeq: %d\r\n", method, url, rtspVersion, cseq)
	for k, v := range headers {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	b.WriteString("\r\n")
	if _, err := p.conn.Write([]byte(b.String())); err != nil {
		return 0, nil, "", fmt.Errorf("streaming: sending %s: %w", method, err)
	}
	statusLine, err := p.tp.ReadLine()
	if err != nil {
		return 0, nil, "", fmt.Errorf("streaming: reading status: %w", err)
	}
	parts := strings.SplitN(statusLine, " ", 3)
	if len(parts) < 2 || parts[0] != rtspVersion {
		return 0, nil, "", fmt.Errorf("streaming: bad status line %q", statusLine)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, "", fmt.Errorf("streaming: bad status code in %q", statusLine)
	}
	hdrs, err := p.tp.ReadMIMEHeader()
	if err != nil {
		return 0, nil, "", fmt.Errorf("streaming: reading headers: %w", err)
	}
	body := ""
	if cl := hdrs.Get("Content-Length"); cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return 0, nil, "", fmt.Errorf("streaming: bad content-length %q", cl)
		}
		buf := make([]byte, n)
		if _, err := readFull(p.tp.R, buf); err != nil {
			return 0, nil, "", fmt.Errorf("streaming: reading body: %w", err)
		}
		body = string(buf)
	}
	return code, hdrs, body, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Describe fetches the session description and returns the advertised
// track ids by kind.
func (p *Player) Describe() (map[string]int, error) {
	code, _, body, err := p.request("DESCRIBE", p.url, map[string]string{"Accept": "application/sdp"})
	if err != nil {
		return nil, err
	}
	if code != 200 {
		return nil, fmt.Errorf("streaming: describe failed: %d", code)
	}
	tracks := make(map[string]int)
	kind := ""
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if m, ok := strings.CutPrefix(line, "m="); ok {
			kind, _, _ = strings.Cut(m, " ")
		}
		if ctl, ok := strings.CutPrefix(line, "a=control:trackID="); ok && kind != "" {
			if id, err := strconv.Atoi(ctl); err == nil {
				tracks[kind] = id
			}
		}
	}
	if len(tracks) == 0 {
		return nil, fmt.Errorf("streaming: no tracks in description:\n%s", body)
	}
	return tracks, nil
}

// Setup prepares one track for reception on a fresh local UDP port.
func (p *Player) Setup(kind string, trackID int) (*PlayerTrack, error) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("streaming: allocating player port: %w", err)
	}
	_, portStr, _ := net.SplitHostPort(pc.LocalAddr().String())
	headers := map[string]string{
		"Transport": fmt.Sprintf("RTP/AVP;unicast;client_port=%s-%s", portStr, portStr),
	}
	if p.sessID != "" {
		headers["Session"] = p.sessID
	}
	code, hdrs, _, err := p.request("SETUP", p.url+"/trackID="+strconv.Itoa(trackID), headers)
	if err != nil {
		pc.Close()
		return nil, err
	}
	if code != 200 {
		pc.Close()
		return nil, fmt.Errorf("streaming: setup failed: %d", code)
	}
	p.sessID = hdrs.Get("Session")
	t := &PlayerTrack{ID: trackID, Kind: kind, pc: pc}
	p.mu.Lock()
	p.tracks[trackID] = t
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		t.receiveLoop()
	}()
	return t, nil
}

func (t *PlayerTrack) receiveLoop() {
	buf := make([]byte, 64<<10)
	for {
		n, _, err := t.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		var pkt rtp.Packet
		if err := pkt.Unmarshal(buf[:n]); err != nil {
			continue
		}
		t.lastPT.Store(uint32(pkt.PayloadType))
		t.packets.Add(1)
	}
}

// Play starts delivery on all set-up tracks.
func (p *Player) Play() error {
	code, _, _, err := p.request("PLAY", p.url, map[string]string{"Session": p.sessID})
	if err != nil {
		return err
	}
	if code != 200 {
		return fmt.Errorf("streaming: play failed: %d", code)
	}
	return nil
}

// Pause suspends delivery.
func (p *Player) Pause() error {
	code, _, _, err := p.request("PAUSE", p.url, map[string]string{"Session": p.sessID})
	if err != nil {
		return err
	}
	if code != 200 {
		return fmt.Errorf("streaming: pause failed: %d", code)
	}
	return nil
}

// Teardown ends the RTSP session and closes all tracks.
func (p *Player) Teardown() error {
	_, _, _, err := p.request("TEARDOWN", p.url, map[string]string{"Session": p.sessID})
	p.Close()
	return err
}

// Close releases the player's sockets without an RTSP exchange.
func (p *Player) Close() {
	p.conn.Close()
	p.mu.Lock()
	for _, t := range p.tracks {
		t.pc.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}
