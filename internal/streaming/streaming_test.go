package streaming

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/topiclog"
	"github.com/globalmmcs/globalmmcs/internal/transport"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// streamRig assembles broker + XGSP + RTSP server.
type streamRig struct {
	b    *broker.Broker
	xsrv *xgsp.Server
	srv  *Server
}

func newStreamRig(t *testing.T) *streamRig {
	t.Helper()
	b := broker.New(broker.Config{ID: "stream-rig"})
	t.Cleanup(b.Stop)

	xc, err := b.LocalClient("xgsp-server", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	xsrv := xgsp.NewServer(xc, xgsp.ServerConfig{})
	if err := xsrv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(xsrv.Stop)

	xgwBC, err := b.LocalClient("rtsp-xgsp", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { xgwBC.Close() })
	xcli, err := xgsp.NewClient(context.Background(), xgwBC, "rtsp-server")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(xcli.Close)

	mediaBC, err := b.LocalClient("rtsp-media", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mediaBC.Close() })

	srv, err := NewServer(ServerConfig{XGSP: xcli, Broker: mediaBC})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return &streamRig{b: b, xsrv: xsrv, srv: srv}
}

func (r *streamRig) createSession(t *testing.T, name string) *xgsp.SessionInfo {
	t.Helper()
	bc, err := r.b.LocalClient("owner-"+name, transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	owner, err := xgsp.NewClient(context.Background(), bc, "owner-"+name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(owner.Close)
	info, err := owner.Create(context.Background(), xgsp.CreateSession{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// publishAudio starts a background publisher of n audio packets onto the
// session's audio topic and returns when it has finished or the test is
// cleaned up. Publish failures surface through the receive-side
// assertions of the calling test.
func (r *streamRig) publishAudio(t *testing.T, info *xgsp.SessionInfo, n int) {
	done := make(chan struct{})
	t.Cleanup(func() { <-done })
	go func() {
		defer close(done)
		bc, err := r.b.LocalClient("pub-"+info.ID, transport.LinkProfile{})
		if err != nil {
			return
		}
		defer bc.Close()
		src := media.NewAudioSource(media.AudioConfig{})
		topic := xgsp.SessionTopic(info.ID, "audio")
		for range n {
			raw, err := src.NextPacket().Marshal()
			if err != nil {
				return
			}
			if err := bc.Publish(topic, event.KindRTP, raw); err != nil {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
}

func TestRTSPFullPlayback(t *testing.T) {
	rig := newStreamRig(t)
	info := rig.createSession(t, "lecture")

	player, err := DialPlayer(rig.srv.URL(info.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()

	tracks, err := player.Describe()
	if err != nil {
		t.Fatal(err)
	}
	audioID, ok := tracks["audio"]
	if !ok {
		t.Fatalf("no audio track in %v", tracks)
	}
	track, err := player.Setup("audio", audioID)
	if err != nil {
		t.Fatal(err)
	}
	if err := player.Play(); err != nil {
		t.Fatal(err)
	}
	rig.publishAudio(t, info, 100)

	deadline := time.Now().Add(10 * time.Second)
	for track.Received() < 20 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if track.Received() < 20 {
		t.Fatalf("player received %d packets", track.Received())
	}
	// The producer re-encodes to the streaming payload type.
	if pt := track.LastPayloadType(); pt != payloadStreamAudio {
		t.Fatalf("payload type = %d, want %d (transcoded)", pt, payloadStreamAudio)
	}
	if err := player.Teardown(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return rig.srv.SessionCount() == 0 })
}

func TestRTSPPauseStopsDelivery(t *testing.T) {
	rig := newStreamRig(t)
	info := rig.createSession(t, "pausable")
	player, err := DialPlayer(rig.srv.URL(info.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	tracks, err := player.Describe()
	if err != nil {
		t.Fatal(err)
	}
	track, err := player.Setup("audio", tracks["audio"])
	if err != nil {
		t.Fatal(err)
	}
	if err := player.Play(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		bc, err := rig.b.LocalClient("pauser-pub", transport.LinkProfile{})
		if err != nil {
			return
		}
		defer bc.Close()
		src := media.NewAudioSource(media.AudioConfig{})
		topic := xgsp.SessionTopic(info.ID, "audio")
		for {
			select {
			case <-stop:
				return
			default:
			}
			raw, err := src.NextPacket().Marshal()
			if err != nil {
				return
			}
			_ = bc.Publish(topic, event.KindRTP, raw)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	defer close(stop)
	waitFor(t, 10*time.Second, func() bool { return track.Received() > 5 })
	if err := player.Pause(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // drain in-flight
	before := track.Received()
	time.Sleep(300 * time.Millisecond)
	after := track.Received()
	if after > before+2 {
		t.Fatalf("delivery continued while paused: %d -> %d", before, after)
	}
	if err := player.Play(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return track.Received() > after })
}

func TestDescribeUnknownSession(t *testing.T) {
	rig := newStreamRig(t)
	player, err := DialPlayer("rtsp://" + rig.srv.Addr() + "/s404")
	if err != nil {
		t.Fatal(err)
	}
	defer player.Close()
	if _, err := player.Describe(); err == nil {
		t.Fatal("describe of unknown session succeeded")
	}
}

func TestProducerSharedAcrossPlayers(t *testing.T) {
	rig := newStreamRig(t)
	info := rig.createSession(t, "shared")
	p1, err := DialPlayer(rig.srv.URL(info.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	p2, err := DialPlayer(rig.srv.URL(info.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	tr1, err := p1.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Describe(); err != nil {
		t.Fatal(err)
	}
	t1, err := p1.Setup("audio", tr1["audio"])
	if err != nil {
		t.Fatal(err)
	}
	t2, err := p2.Setup("audio", tr1["audio"])
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Play(); err != nil {
		t.Fatal(err)
	}
	if err := p2.Play(); err != nil {
		t.Fatal(err)
	}
	rig.publishAudio(t, info, 100)
	waitFor(t, 10*time.Second, func() bool {
		return t1.Received() > 10 && t2.Received() > 10
	})
	rig.srv.mu.Lock()
	producers := len(rig.srv.producers)
	rig.srv.mu.Unlock()
	if producers != 1 {
		t.Fatalf("producers = %d, want 1 shared", producers)
	}
}

func TestArchiveRecordReplay(t *testing.T) {
	rig := newStreamRig(t)
	info := rig.createSession(t, "archived")

	recBC, err := rig.b.LocalClient("recorder", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer recBC.Close()
	topic := xgsp.SessionTopic(info.ID, "audio")
	sub, err := recBC.Subscribe(topic, 256)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	recDone := make(chan struct{})
	recCount := make(chan int, 1)
	var arch Archiver
	go func() {
		n, err := arch.Record(&buf, sub, recDone)
		if err != nil {
			t.Errorf("record: %v", err)
		}
		recCount <- n
	}()
	rig.publishAudio(t, info, 30)
	time.Sleep(200 * time.Millisecond)
	close(recDone)
	n := <-recCount
	if n != 30 {
		t.Fatalf("recorded %d, want 30", n)
	}

	// Replay into a different session topic; a subscriber sees the
	// stream again.
	replayBC, err := rig.b.LocalClient("replayer", transport.LinkProfile{})
	if err != nil {
		t.Fatal(err)
	}
	defer replayBC.Close()
	obs, err := replayBC.Subscribe("/xgsp/session/replayed/audio", 256)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := arch.Replay(context.Background(), &buf, replayBC, false, func(string) string {
		return "/xgsp/session/replayed/audio"
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 30 {
		t.Fatalf("replayed %d, want 30", replayed)
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 30 {
		select {
		case <-obs.C():
			got++
		case <-deadline:
			t.Fatalf("observed %d/30 replayed packets", got)
		}
	}
}

// countingSink collects replayed events without a broker.
type countingSink struct{ events []*event.Event }

func (s *countingSink) PublishEvent(e *event.Event) error {
	s.events = append(s.events, e)
	return nil
}

func archiveEvent(i int) *event.Event {
	return &event.Event{
		Topic:     "/xgsp/session/legacy/audio",
		Kind:      event.KindData,
		Source:    "legacy-rec",
		Payload:   []byte{byte(i), byte(i >> 8)},
		Timestamp: int64(i + 1),
	}
}

// legacyArchive builds an archive in the pre-topiclog format:
// 4-byte big-endian length then the encoded event.
func legacyArchive(n int) *bytes.Buffer {
	var buf bytes.Buffer
	var hdr [4]byte
	for i := 0; i < n; i++ {
		b := event.Marshal(archiveEvent(i))
		binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
		buf.Write(hdr[:])
		buf.Write(b)
	}
	return &buf
}

func TestArchiveRejectsLegacyFormat(t *testing.T) {
	var arch Archiver
	var sink countingSink
	_, err := arch.Replay(context.Background(), legacyArchive(5), &sink, false, nil)
	if !errors.Is(err, ErrLegacyArchive) {
		t.Fatalf("replaying legacy archive: err = %v, want ErrLegacyArchive", err)
	}
	if len(sink.events) != 0 {
		t.Fatalf("replayed %d events from rejected archive", len(sink.events))
	}
}

func TestConvertLegacyArchive(t *testing.T) {
	var converted bytes.Buffer
	n, err := ConvertLegacy(legacyArchive(12), &converted)
	if err != nil {
		t.Fatalf("ConvertLegacy: %v", err)
	}
	if n != 12 {
		t.Fatalf("converted %d events, want 12", n)
	}

	// Converted records carry contiguous sequence numbers from 1 and
	// replay through the normal path.
	raw := converted.Bytes()
	for want := uint64(1); len(raw) > 0; want++ {
		seq, _, consumed, err := topiclog.ParseRecord(raw, 0)
		if err != nil {
			t.Fatalf("record %d: %v", want, err)
		}
		if seq != want {
			t.Fatalf("record seq = %d, want %d", seq, want)
		}
		raw = raw[consumed:]
	}
	var arch Archiver
	var sink countingSink
	got, err := arch.Replay(context.Background(), &converted, &sink, false, nil)
	if err != nil {
		t.Fatalf("replaying converted archive: %v", err)
	}
	if got != 12 {
		t.Fatalf("replayed %d, want 12", got)
	}
	for i, e := range sink.events {
		if want := archiveEvent(i); !bytes.Equal(e.Payload, want.Payload) {
			t.Fatalf("event %d payload = %v, want %v", i, e.Payload, want.Payload)
		}
	}
}

func TestArchiveReplayTornTail(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteFrame(&buf, uint64(i+1), archiveEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Chop the final record mid-payload: a crashed recorder leaves
	// exactly this shape. Replay must end cleanly after record 9.
	torn := buf.Bytes()[:buf.Len()-3]
	var arch Archiver
	var sink countingSink
	got, err := arch.Replay(context.Background(), bytes.NewReader(torn), &sink, false, nil)
	if err != nil {
		t.Fatalf("replaying torn archive: %v", err)
	}
	if got != 9 {
		t.Fatalf("replayed %d, want 9 (torn tail dropped)", got)
	}
}

func TestSessionIDFromURL(t *testing.T) {
	cases := []struct {
		url     string
		id      string
		trackID int
		has     bool
	}{
		{"rtsp://h:1/s1", "s1", -1, false},
		{"rtsp://h:1/s1/trackID=2", "s1", 2, true},
		{"rtsp://h:1", "", 0, false},
		{"/s9/trackID=0", "s9", 0, true},
	}
	for _, tc := range cases {
		id, track, has := sessionIDFromURL(tc.url)
		if id != tc.id || has != tc.has || (has && track != tc.trackID) {
			t.Errorf("sessionIDFromURL(%q) = %q %d %v", tc.url, id, track, has)
		}
	}
}

func TestParseClientPort(t *testing.T) {
	if got := parseClientPort("RTP/AVP;unicast;client_port=5004-5005"); got != 5004 {
		t.Fatal(got)
	}
	if got := parseClientPort("RTP/AVP;unicast"); got != 0 {
		t.Fatal(got)
	}
}

func waitFor(t *testing.T, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
