package streaming

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
)

// Archiver records a session's media events to a writer and replays them
// later with original pacing — the "conference archiving service" the
// Admire system provides and Global-MMCS adopts.
type Archiver struct{}

// WriteFrame writes one length-framed encoded event — the archive wire
// format shared by Record and the public SDK's archiver.
func WriteFrame(w io.Writer, e *event.Event) error {
	b := event.Marshal(e)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("streaming: writing archive frame: %w", err)
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("streaming: writing archive frame: %w", err)
	}
	return nil
}

// Record consumes events from sub until it closes or done closes,
// writing length-framed encoded events to w. It returns the number of
// events recorded.
func (Archiver) Record(w io.Writer, sub *broker.Subscription, done <-chan struct{}) (int, error) {
	count := 0
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return count, nil
			}
			if err := WriteFrame(w, e); err != nil {
				return count, err
			}
			count++
		case <-done:
			return count, nil
		}
	}
}

// Publisher abstracts the replay sink (a broker client).
type Publisher interface {
	PublishEvent(e *event.Event) error
}

// Replay reads an archive and republishes its events until the archive
// ends or ctx is cancelled. With pace=true the original inter-event
// gaps (from event timestamps) are reproduced; rewriteTopic, when
// non-nil, maps each event's topic so a replay can feed a different
// session. Returns events replayed.
func (Archiver) Replay(ctx context.Context, r io.Reader, pub Publisher, pace bool, rewriteTopic func(string) string) (int, error) {
	count := 0
	var hdr [4]byte
	var prevTS int64
	for {
		if err := ctx.Err(); err != nil {
			return count, err
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return count, nil
			}
			return count, fmt.Errorf("streaming: reading archive frame: %w", err)
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > event.MaxWireLen {
			return count, fmt.Errorf("streaming: archive frame length %d out of range", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return count, fmt.Errorf("streaming: reading archive frame: %w", err)
		}
		e, err := event.Unmarshal(buf)
		if err != nil {
			return count, fmt.Errorf("streaming: decoding archived event: %w", err)
		}
		if pace && prevTS != 0 {
			if gap := time.Duration(e.Timestamp - prevTS); gap > 0 && gap < 10*time.Second {
				select {
				case <-time.After(gap):
				case <-ctx.Done():
					return count, ctx.Err()
				}
			}
		}
		prevTS = e.Timestamp
		out := e.Clone()
		if rewriteTopic != nil {
			out.Topic = rewriteTopic(out.Topic)
		}
		out.Timestamp = time.Now().UnixNano()
		if err := pub.PublishEvent(out); err != nil {
			return count, fmt.Errorf("streaming: republishing archived event: %w", err)
		}
		count++
	}
}
