package streaming

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/topiclog"
)

// Archiver records a session's media events to a writer and replays them
// later with original pacing — the "conference archiving service" the
// Admire system provides and Global-MMCS adopts.
//
// Archives use the broker's durable topic log record format (see
// internal/topiclog): each event is a sequence-stamped, CRC-framed
// record, so an archive file is interchangeable with a topic log
// segment and a torn tail from a crashed recorder is detectable.
// Archives written by earlier releases (4-byte length framing, no
// checksum) are rejected with an error naming ConvertLegacy.
type Archiver struct{}

// ErrLegacyArchive reports an archive in the pre-topiclog format:
// length-framed events with no sequence numbers or checksums. Convert
// it once with ConvertLegacy.
var ErrLegacyArchive = errors.New("streaming: legacy archive format (4-byte length framing); convert with ConvertLegacy")

// WriteFrame writes one archived event as a topiclog record: the
// encoded event is the record payload, stamped with seq and a CRC-32C.
// Sequence numbers in one archive must be contiguous and ascending
// from 1 — Record and ConvertLegacy maintain this; callers framing
// events themselves must too.
func WriteFrame(w io.Writer, seq uint64, e *event.Event) error {
	rec := topiclog.AppendRecord(nil, seq, event.Marshal(e))
	if _, err := w.Write(rec); err != nil {
		return fmt.Errorf("streaming: writing archive record: %w", err)
	}
	return nil
}

// Record consumes events from sub until it closes or done closes,
// writing sequence-stamped records to w. It returns the number of
// events recorded.
func (Archiver) Record(w io.Writer, sub *broker.Subscription, done <-chan struct{}) (int, error) {
	count := 0
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return count, nil
			}
			if err := WriteFrame(w, uint64(count+1), e); err != nil {
				return count, err
			}
			count++
		case <-done:
			return count, nil
		}
	}
}

// Publisher abstracts the replay sink (a broker client).
type Publisher interface {
	PublishEvent(e *event.Event) error
}

// Replay reads an archive and republishes its events until the archive
// ends or ctx is cancelled. With pace=true the original inter-event
// gaps (from event timestamps) are reproduced; rewriteTopic, when
// non-nil, maps each event's topic so a replay can feed a different
// session. Returns events replayed.
//
// A truncated final record (a recorder crash mid-write) ends the
// replay cleanly after the last complete event, matching the topic
// log's own torn-tail recovery.
func (Archiver) Replay(ctx context.Context, r io.Reader, pub Publisher, pace bool, rewriteTopic func(string) string) (int, error) {
	br := bufio.NewReader(r)
	// Probe for the legacy format: its byte 4 is the event magic; a
	// record header's byte 4 is a high sequence byte, never 0xE5 for
	// any realistic archive length.
	if head, err := br.Peek(5); err == nil && head[4] == 0xE5 {
		return 0, ErrLegacyArchive
	}
	count := 0
	var prevTS int64
	for {
		if err := ctx.Err(); err != nil {
			return count, err
		}
		_, payload, err := topiclog.ReadRecord(br, 0)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return count, nil
			}
			return count, fmt.Errorf("streaming: reading archive record: %w", err)
		}
		e, err := event.Unmarshal(payload)
		if err != nil {
			return count, fmt.Errorf("streaming: decoding archived event: %w", err)
		}
		if pace && prevTS != 0 {
			if gap := time.Duration(e.Timestamp - prevTS); gap > 0 && gap < 10*time.Second {
				select {
				case <-time.After(gap):
				case <-ctx.Done():
					return count, ctx.Err()
				}
			}
		}
		prevTS = e.Timestamp
		out := e.Clone()
		if rewriteTopic != nil {
			out.Topic = rewriteTopic(out.Topic)
		}
		out.Timestamp = time.Now().UnixNano()
		if err := pub.PublishEvent(out); err != nil {
			return count, fmt.Errorf("streaming: republishing archived event: %w", err)
		}
		count++
	}
}

// ConvertLegacy rewrites a legacy length-framed archive from r as
// topiclog records on w, assigning sequence numbers from 1. It returns
// the number of events converted. A truncated final frame is dropped,
// like the topic log's torn-tail recovery.
func ConvertLegacy(r io.Reader, w io.Writer) (int, error) {
	count := 0
	var hdr [4]byte
	var rec []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return count, nil
			}
			return count, fmt.Errorf("streaming: reading legacy frame: %w", err)
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > event.MaxWireLen {
			return count, fmt.Errorf("streaming: legacy frame length %d out of range", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return count, nil
			}
			return count, fmt.Errorf("streaming: reading legacy frame: %w", err)
		}
		// Round-trip through the codec so a corrupt legacy frame is
		// rejected here rather than surfacing on replay.
		if _, err := event.Unmarshal(buf); err != nil {
			return count, fmt.Errorf("streaming: decoding legacy frame: %w", err)
		}
		rec = topiclog.AppendRecord(rec[:0], uint64(count+1), buf)
		if _, err := w.Write(rec); err != nil {
			return count, fmt.Errorf("streaming: writing converted record: %w", err)
		}
		count++
	}
}
