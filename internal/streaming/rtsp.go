package streaming

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/textproto"
	"strconv"
	"strings"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// rtspVersion is the protocol version spoken.
const rtspVersion = "RTSP/1.0"

// ServerConfig parameterises the RTSP server.
type ServerConfig struct {
	// ListenAddr is the RTSP TCP address (e.g. "127.0.0.1:0").
	ListenAddr string
	// XGSP resolves session ids from request URLs.
	XGSP *xgsp.Client
	// Broker attaches producers to session topics.
	Broker *broker.Client
	// Metrics receives counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

// Server is the Helix-substitute RTSP server: players DESCRIBE a
// Global-MMCS session, SETUP tracks onto their UDP ports, and PLAY.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu        sync.Mutex
	producers map[string]*Producer    // session id → producer
	sessions  map[string]*rtspSession // RTSP session id → state
	nextSess  uint64

	wg   sync.WaitGroup
	done chan struct{}
	once sync.Once
}

// rtspSession is one player's state.
type rtspSession struct {
	id       string
	producer *Producer
	pc       net.PacketConn
	tracks   map[int]*Output
}

// NewServer binds the RTSP listener.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.XGSP == nil || cfg.Broker == nil {
		return nil, errors.New("streaming: rtsp server requires xgsp and broker clients")
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &metrics.Registry{}
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("streaming: binding rtsp listener: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		ln:        ln,
		producers: make(map[string]*Producer),
		sessions:  make(map[string]*rtspSession),
		done:      make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the RTSP TCP address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the rtsp:// URL for a session.
func (s *Server) URL(sessionID string) string {
	return "rtsp://" + s.Addr() + "/" + sessionID
}

// Stop closes the listener, sessions and producers.
func (s *Server) Stop() {
	s.once.Do(func() { close(s.done) })
	s.ln.Close()
	s.mu.Lock()
	sessions := make([]*rtspSession, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	clear(s.sessions)
	producers := make([]*Producer, 0, len(s.producers))
	for _, p := range s.producers {
		producers = append(producers, p)
	}
	clear(s.producers)
	s.mu.Unlock()
	for _, sess := range sessions {
		s.teardown(sess)
	}
	for _, p := range producers {
		p.Stop()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// rtspRequest is one parsed request.
type rtspRequest struct {
	method  string
	url     string
	headers textproto.MIMEHeader
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	reader := textproto.NewReader(bufio.NewReader(conn))
	for {
		line, err := reader.ReadLine()
		if err != nil {
			return
		}
		if line == "" {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 3 || parts[2] != rtspVersion {
			s.reply(conn, "", 400, nil, "")
			return
		}
		headers, err := reader.ReadMIMEHeader()
		if err != nil {
			return
		}
		req := &rtspRequest{method: parts[0], url: parts[1], headers: headers}
		s.cfg.Metrics.Counter("streaming.rtsp_requests").Inc()
		if !s.handle(conn, req) {
			return
		}
	}
}

// handle processes one request; returns false to close the connection.
func (s *Server) handle(conn net.Conn, req *rtspRequest) bool {
	cseq := req.headers.Get("CSeq")
	switch req.method {
	case "OPTIONS":
		s.reply(conn, cseq, 200, map[string]string{
			"Public": "OPTIONS, DESCRIBE, SETUP, PLAY, PAUSE, TEARDOWN",
		}, "")
	case "DESCRIBE":
		s.handleDescribe(conn, req, cseq)
	case "SETUP":
		s.handleSetup(conn, req, cseq)
	case "PLAY":
		s.handlePlayPause(conn, req, cseq, false)
	case "PAUSE":
		s.handlePlayPause(conn, req, cseq, true)
	case "TEARDOWN":
		s.handleTeardown(conn, req, cseq)
		return false
	default:
		s.reply(conn, cseq, 405, nil, "")
	}
	return true
}

// sessionIDFromURL extracts the session id from rtsp://host/<id>[/track].
func sessionIDFromURL(url string) (sessionID string, trackID int, hasTrack bool) {
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[i+1:]
	} else {
		return "", 0, false
	}
	parts := strings.Split(rest, "/")
	sessionID = parts[0]
	trackID = -1
	if len(parts) > 1 && strings.HasPrefix(parts[1], "trackID=") {
		if n, err := strconv.Atoi(strings.TrimPrefix(parts[1], "trackID=")); err == nil {
			return sessionID, n, true
		}
	}
	return sessionID, trackID, false
}

// producerFor returns (creating if needed) the producer of a session.
func (s *Server) producerFor(sessionID string) (*Producer, error) {
	s.mu.Lock()
	if p, ok := s.producers[sessionID]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()

	info, err := s.cfg.XGSP.Lookup(context.Background(), sessionID)
	if err != nil {
		return nil, err
	}
	if info == nil || !info.Active {
		return nil, fmt.Errorf("streaming: no active session %s", sessionID)
	}
	p, err := NewProducer(s.cfg.Broker, info, s.cfg.Metrics)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	existing, raced := s.producers[sessionID]
	if !raced {
		s.producers[sessionID] = p
	}
	s.mu.Unlock()
	if raced {
		p.Stop()
		return existing, nil
	}
	return p, nil
}

func (s *Server) handleDescribe(conn net.Conn, req *rtspRequest, cseq string) {
	sessionID, _, _ := sessionIDFromURL(req.url)
	p, err := s.producerFor(sessionID)
	if err != nil {
		s.reply(conn, cseq, 404, nil, "")
		return
	}
	var sdp strings.Builder
	sdp.WriteString("v=0\r\no=- 0 0 IN IP4 0.0.0.0\r\ns=" + sessionID + "\r\nt=0 0\r\n")
	for _, tr := range p.Tracks() {
		pt := payloadStreamAudio
		if tr.Kind == "video" {
			pt = payloadStreamVideo
		}
		fmt.Fprintf(&sdp, "m=%s 0 RTP/AVP %d\r\na=control:trackID=%d\r\n", tr.Kind, pt, tr.ID)
	}
	s.reply(conn, cseq, 200, map[string]string{
		"Content-Type": "application/sdp",
	}, sdp.String())
}

func (s *Server) handleSetup(conn net.Conn, req *rtspRequest, cseq string) {
	sessionID, trackID, hasTrack := sessionIDFromURL(req.url)
	if !hasTrack {
		s.reply(conn, cseq, 400, nil, "")
		return
	}
	transport := req.headers.Get("Transport")
	clientPort := parseClientPort(transport)
	if clientPort == 0 {
		s.reply(conn, cseq, 461, nil, "") // unsupported transport
		return
	}
	p, err := s.producerFor(sessionID)
	if err != nil {
		s.reply(conn, cseq, 404, nil, "")
		return
	}
	if _, ok := p.TrackByID(trackID); !ok {
		s.reply(conn, cseq, 404, nil, "")
		return
	}
	clientHost, _, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		s.reply(conn, cseq, 500, nil, "")
		return
	}
	// Reuse (or create) the RTSP session.
	sessID := req.headers.Get("Session")
	s.mu.Lock()
	sess, ok := s.sessions[sessID]
	if !ok {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			s.mu.Unlock()
			s.reply(conn, cseq, 500, nil, "")
			return
		}
		s.nextSess++
		sess = &rtspSession{
			id:       strconv.FormatUint(s.nextSess*7919, 10),
			producer: p,
			pc:       pc,
			tracks:   make(map[int]*Output),
		}
		s.sessions[sess.id] = sess
	}
	s.mu.Unlock()
	dst, err := net.ResolveUDPAddr("udp", net.JoinHostPort(clientHost, strconv.Itoa(clientPort)))
	if err != nil {
		s.reply(conn, cseq, 500, nil, "")
		return
	}
	out, err := p.Attach(trackID, sess.pc, dst)
	if err != nil {
		s.reply(conn, cseq, 500, nil, "")
		return
	}
	s.mu.Lock()
	sess.tracks[trackID] = out
	s.mu.Unlock()
	_, serverPort, _ := net.SplitHostPort(sess.pc.LocalAddr().String())
	s.reply(conn, cseq, 200, map[string]string{
		"Session":   sess.id,
		"Transport": fmt.Sprintf("%s;server_port=%s-%s", transport, serverPort, serverPort),
	}, "")
	s.cfg.Metrics.Counter("streaming.setups").Inc()
}

func parseClientPort(transport string) int {
	for _, part := range strings.Split(transport, ";") {
		if v, ok := strings.CutPrefix(part, "client_port="); ok {
			lo, _, _ := strings.Cut(v, "-")
			if n, err := strconv.Atoi(lo); err == nil {
				return n
			}
		}
	}
	return 0
}

func (s *Server) handlePlayPause(conn net.Conn, req *rtspRequest, cseq string, pause bool) {
	sessID := req.headers.Get("Session")
	s.mu.Lock()
	sess, ok := s.sessions[sessID]
	s.mu.Unlock()
	if !ok {
		s.reply(conn, cseq, 454, nil, "") // session not found
		return
	}
	for _, out := range sess.tracks {
		if pause {
			out.Pause()
		} else {
			out.Resume()
		}
	}
	s.reply(conn, cseq, 200, map[string]string{"Session": sess.id}, "")
	if pause {
		s.cfg.Metrics.Counter("streaming.pauses").Inc()
	} else {
		s.cfg.Metrics.Counter("streaming.plays").Inc()
	}
}

func (s *Server) handleTeardown(conn net.Conn, req *rtspRequest, cseq string) {
	sessID := req.headers.Get("Session")
	s.mu.Lock()
	sess, ok := s.sessions[sessID]
	delete(s.sessions, sessID)
	s.mu.Unlock()
	if ok {
		s.teardown(sess)
	}
	s.reply(conn, cseq, 200, nil, "")
}

func (s *Server) teardown(sess *rtspSession) {
	for trackID, out := range sess.tracks {
		sess.producer.Detach(trackID, out)
	}
	sess.pc.Close()
}

// SessionCount returns the number of active RTSP sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *Server) reply(conn net.Conn, cseq string, code int, headers map[string]string, body string) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d %s\r\n", rtspVersion, code, rtspStatusText(code))
	if cseq != "" {
		fmt.Fprintf(&b, "CSeq: %s\r\n", cseq)
	}
	for k, v := range headers {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n%s", len(body), body)
	if _, err := conn.Write([]byte(b.String())); err != nil {
		s.cfg.Metrics.Counter("streaming.reply_errors").Inc()
	}
}

func rtspStatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 454:
		return "Session Not Found"
	case 461:
		return "Unsupported Transport"
	default:
		return "Error"
	}
}
