// Package streaming implements the Global-MMCS streaming service — the
// substitute for the paper's Real Producer + Helix Server: a producer
// that subscribes to a session's RTP topics and re-encodes packets into
// the "streaming" payload format, an RTSP server that Real/Windows-Media
// style players use to pull those streams over UDP, a player client, and
// a conference archiver that records and replays session media.
package streaming

import (
	"fmt"
	"net"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// Dynamic payload types the producer re-encodes into ("Real format" —
// the transcode itself is simulated; see DESIGN.md §7).
const (
	payloadStreamAudio = 96
	payloadStreamVideo = 97
)

// Track identifies one media track of a streamed session.
type Track struct {
	// Kind is "audio" or "video".
	Kind string
	// ID is the RTSP track id (0 = audio, 1 = video).
	ID int
	// Topic is the broker topic the producer consumes.
	Topic string
}

// Producer consumes one session's media topics, re-encodes packets and
// fans them out to attached outputs (RTSP deliveries). This is the
// "customer input plugin" Real Producer of §3.2.
type Producer struct {
	sessionID string
	tracks    []Track

	mu      sync.Mutex
	outputs map[int]map[*Output]struct{} // track id → outputs
	closed  bool

	metrics *metrics.Registry
	wg      sync.WaitGroup
	done    chan struct{}
	once    sync.Once
}

// Output is one delivery target: RTP datagrams written to a UDP address.
type Output struct {
	pc      net.PacketConn
	addr    net.Addr
	packets metrics.Counter

	mu     sync.Mutex
	paused bool
}

// Pause suspends delivery.
func (o *Output) Pause() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.paused = true
}

// Resume re-enables delivery.
func (o *Output) Resume() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.paused = false
}

// Sent returns delivered packet count.
func (o *Output) Sent() uint64 { return o.packets.Value() }

func (o *Output) deliver(b []byte) {
	o.mu.Lock()
	paused := o.paused
	o.mu.Unlock()
	if paused {
		return
	}
	if _, err := o.pc.WriteTo(b, o.addr); err == nil {
		o.packets.Inc()
	}
}

// NewProducer subscribes a producer to the session's audio and video
// topics through the given broker client.
func NewProducer(bc *broker.Client, info *xgsp.SessionInfo, reg *metrics.Registry) (*Producer, error) {
	if reg == nil {
		reg = &metrics.Registry{}
	}
	p := &Producer{
		sessionID: info.ID,
		outputs:   make(map[int]map[*Output]struct{}),
		metrics:   reg,
		done:      make(chan struct{}),
	}
	trackID := 0
	for _, m := range info.Media {
		kind := string(m.Type)
		if kind != "audio" && kind != "video" {
			continue
		}
		track := Track{Kind: kind, ID: trackID, Topic: m.Topic}
		p.tracks = append(p.tracks, track)
		sub, err := bc.Subscribe(m.Topic, 1024)
		if err != nil {
			return nil, fmt.Errorf("streaming: subscribing %s: %w", m.Topic, err)
		}
		p.outputs[trackID] = make(map[*Output]struct{})
		p.wg.Add(1)
		go func(tr Track, sub *broker.Subscription) {
			defer p.wg.Done()
			p.consume(tr, sub)
		}(track, sub)
		trackID++
	}
	if len(p.tracks) == 0 {
		return nil, fmt.Errorf("streaming: session %s has no streamable media", info.ID)
	}
	return p, nil
}

// SessionID returns the produced session.
func (p *Producer) SessionID() string { return p.sessionID }

// Tracks lists the produced tracks.
func (p *Producer) Tracks() []Track { return p.tracks }

// TrackByID finds a track.
func (p *Producer) TrackByID(id int) (Track, bool) {
	for _, t := range p.tracks {
		if t.ID == id {
			return t, true
		}
	}
	return Track{}, false
}

// Attach registers an output for a track. The socket is owned by the
// caller (the RTSP session).
func (p *Producer) Attach(trackID int, pc net.PacketConn, addr net.Addr) (*Output, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("streaming: producer closed")
	}
	outs, ok := p.outputs[trackID]
	if !ok {
		return nil, fmt.Errorf("streaming: no track %d", trackID)
	}
	o := &Output{pc: pc, addr: addr, paused: true}
	outs[o] = struct{}{}
	return o, nil
}

// Detach removes an output.
func (p *Producer) Detach(trackID int, o *Output) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if outs, ok := p.outputs[trackID]; ok {
		delete(outs, o)
	}
}

// OutputCount returns attached outputs across tracks.
func (p *Producer) OutputCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, outs := range p.outputs {
		n += len(outs)
	}
	return n
}

// Stop halts consumption.
func (p *Producer) Stop() {
	p.once.Do(func() { close(p.done) })
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Producer) consume(tr Track, sub *broker.Subscription) {
	for {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return
			}
			if e.Kind != event.KindRTP {
				continue
			}
			b, err := p.transcode(tr, e.Payload)
			if err != nil {
				p.metrics.Counter("streaming.transcode_errors").Inc()
				continue
			}
			p.metrics.Counter("streaming.packets_produced").Inc()
			p.mu.Lock()
			outs := make([]*Output, 0, len(p.outputs[tr.ID]))
			for o := range p.outputs[tr.ID] {
				outs = append(outs, o)
			}
			p.mu.Unlock()
			for _, o := range outs {
				o.deliver(b)
			}
		case <-p.done:
			return
		}
	}
}

// transcode simulates the Real Producer's re-encode: the RTP payload is
// preserved, the payload type is remapped to the streaming format and
// the SSRC is rewritten to the producer's own (it is a new media source).
func (p *Producer) transcode(tr Track, raw []byte) ([]byte, error) {
	var pkt rtp.Packet
	if err := pkt.Unmarshal(raw); err != nil {
		return nil, err
	}
	if tr.Kind == "audio" {
		pkt.PayloadType = payloadStreamAudio
	} else {
		pkt.PayloadType = payloadStreamVideo
	}
	pkt.SSRC = producerSSRC(p.sessionID, tr.ID)
	return pkt.Marshal()
}

func producerSSRC(sessionID string, trackID int) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(sessionID); i++ {
		h ^= uint32(sessionID[i])
		h *= 16777619
	}
	return h ^ uint32(trackID)
}
