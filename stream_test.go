// Black-box tests of the unified Stream/Publisher surface: delivery
// QoS (drop policies, conflation, lag observability), Recv context
// handling, iterator termination, and the deprecated shims.
package globalmmcs_test

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

// chatFixture starts a node, creates a session alice and bob both join,
// and returns bob's session handle plus his room stream opened with the
// given options (messages sent through the returned session carry
// From=bob; the tests only assert bodies).
func chatFixture(t *testing.T, m *globalmmcs.Metrics, opts ...globalmmcs.StreamOption) (*globalmmcs.Session, *globalmmcs.ChatRoom) {
	t.Helper()
	ctx := context.Background()
	var srvOpts []globalmmcs.Option
	if m != nil {
		srvOpts = append(srvOpts, globalmmcs.WithMetrics(m))
	}
	srv := startNode(t, srvOpts...)
	alice := newClient(t, srv, "alice")
	bob := newClient(t, srv, "bob")
	session, err := alice.CreateSession(ctx, "qos")
	if err != nil {
		t.Fatal(err)
	}
	if err := session.Join(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	bobSession, err := bob.Join(ctx, session.ID(), "b")
	if err != nil {
		t.Fatal(err)
	}
	room, err := bobSession.Chat(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = room.Close() })
	return bobSession, room
}

func sendN(t *testing.T, session *globalmmcs.Session, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		if err := session.Send(context.Background(), fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func waitDrops[T any](t *testing.T, s *globalmmcs.Stream[T], want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Drops() < want {
		if time.Now().After(deadline) {
			t.Fatalf("drops = %d, want %d", s.Drops(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamDropOldest: with a 1-deep buffer and the default policy,
// flooding 5 messages keeps only the newest; 4 drops are counted.
func TestStreamDropOldest(t *testing.T) {
	session, room := chatFixture(t, nil, globalmmcs.WithBuffer(1))
	sendN(t, session, 5)
	waitDrops(t, room, 4)
	msg, err := room.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if msg.Body != "m5" {
		t.Fatalf("drop-oldest kept %q, want m5", msg.Body)
	}
	if room.Drops() != 4 {
		t.Fatalf("drops = %d, want 4", room.Drops())
	}
}

// TestStreamDropNewest: same flood, inverted policy — the first message
// is kept, later ones are discarded.
func TestStreamDropNewest(t *testing.T) {
	session, room := chatFixture(t, nil,
		globalmmcs.WithBuffer(1), globalmmcs.WithDropPolicy(globalmmcs.DropNewest))
	sendN(t, session, 5)
	waitDrops(t, room, 4)
	msg, err := room.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if msg.Body != "m1" {
		t.Fatalf("drop-newest kept %q, want m1", msg.Body)
	}
}

// TestStreamBlock: backpressure drops nothing — all 5 messages arrive
// in order through a 1-deep buffer once the consumer reads.
func TestStreamBlock(t *testing.T) {
	session, room := chatFixture(t, nil,
		globalmmcs.WithBuffer(1), globalmmcs.WithDropPolicy(globalmmcs.Block))
	sendN(t, session, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		msg, err := room.Recv(ctx)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if want := fmt.Sprintf("m%d", i); msg.Body != want {
			t.Fatalf("message %d = %q, want %q", i, msg.Body, want)
		}
	}
	if room.Drops() != 0 {
		t.Fatalf("block policy dropped %d events", room.Drops())
	}
}

// TestStreamLagNotifyAndGauge is the pumpSend silent-loss regression:
// full-buffer drops must fire the WithLagNotify callback with the
// cumulative count AND surface as a per-stream queue_drops gauge in the
// node's registry — and the gauge must unregister on Close.
func TestStreamLagNotifyAndGauge(t *testing.T) {
	m := globalmmcs.NewMetrics()
	var lastLag atomic.Uint64
	session, room := chatFixture(t, m,
		globalmmcs.WithBuffer(1),
		globalmmcs.WithLagNotify(func(dropped uint64) { lastLag.Store(dropped) }))
	sendN(t, session, 5)
	waitDrops(t, room, 4)
	if got := lastLag.Load(); got != 4 {
		t.Fatalf("lag notify saw %d, want 4", got)
	}
	gauge := regexp.MustCompile(`gauge\s+stream\.bob\.chat\.\S+\.queue_drops\s+4\b`)
	if report := m.Report(); !gauge.MatchString(report) {
		t.Fatalf("queue_drops gauge missing from report:\n%s", report)
	}

	// A second stream with the same identity shares the gauge; closing
	// it must not unregister the gauge out from under the first.
	room2, err := session.Chat(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := room2.Close(); err != nil {
		t.Fatal(err)
	}
	if report := m.Report(); !gauge.MatchString(report) {
		t.Fatalf("gauge unregistered while a same-named stream is live:\n%s", report)
	}

	if err := room.Close(); err != nil {
		t.Fatal(err)
	}
	if report := m.Report(); strings.Contains(report, "queue_drops ") && gauge.MatchString(report) {
		t.Fatalf("gauge still registered after Close:\n%s", report)
	}
}

// TestStreamConflation: a slow consumer of a media stream with SSRC
// conflation skips ahead — it sees the final packet without wading
// through the backlog, and the merges are counted as drops.
func TestStreamConflation(t *testing.T) {
	ctx := context.Background()
	srv := startNode(t)
	alice := newClient(t, srv, "alice")
	session, err := alice.CreateSession(ctx, "conflate")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := session.Subscribe(ctx, globalmmcs.Audio,
		globalmmcs.WithBuffer(1), globalmmcs.WithConflation())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := session.Publisher(globalmmcs.Audio)
	if err != nil {
		t.Fatal(err)
	}
	src := globalmmcs.NewAudioSource(globalmmcs.AudioConfig{SSRC: 7})
	const total = 40
	var lastSeq uint16
	for i := 0; i < total; i++ {
		raw, err := src.NextPacket()
		if err != nil {
			t.Fatal(err)
		}
		p, err := globalmmcs.ParseRTP(raw)
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = p.SequenceNumber
		if err := pub.Publish(raw); err != nil {
			t.Fatal(err)
		}
	}

	recvCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	received := 0
	for {
		pkt, err := sub.Recv(recvCtx)
		if err != nil {
			t.Fatalf("final packet never arrived after %d receives: %v", received, err)
		}
		received++
		p, err := pkt.RTP()
		if err != nil {
			t.Fatal(err)
		}
		if p.SSRC != 7 {
			t.Fatalf("ssrc = %d", p.SSRC)
		}
		if p.SequenceNumber == lastSeq {
			break
		}
	}
	if received == total {
		t.Fatalf("conflation delivered all %d packets to a slow consumer", total)
	}
	if sub.Drops() == 0 {
		t.Fatal("conflation merges not counted as drops")
	}
}

// TestStreamDropTotalsUnderOverload: the batched pump's drop accounting
// is exact under sustained overload — flooding through a 1-deep buffer
// in chunks, the cumulative Drops() and the lag-notify value equal the
// pre-refactor per-event totals (everything sent minus the one buffered
// survivor), and the survivor is always the newest message.
func TestStreamDropTotalsUnderOverload(t *testing.T) {
	var lastLag atomic.Uint64
	session, room := chatFixture(t, nil,
		globalmmcs.WithBuffer(1),
		globalmmcs.WithLagNotify(func(dropped uint64) { lastLag.Store(dropped) }))

	const chunks, chunkSize = 3, 32
	sent := 0
	for c := 0; c < chunks; c++ {
		for i := 0; i < chunkSize; i++ {
			sent++
			if err := session.Send(context.Background(), fmt.Sprintf("m%d", sent)); err != nil {
				t.Fatal(err)
			}
		}
		// Every processed message beyond the single buffered one is a
		// counted displacement — the same total the per-event pump
		// produced.
		waitDrops(t, room, uint64(sent-1))
		if got := room.Drops(); got != uint64(sent-1) {
			t.Fatalf("after %d sent: drops = %d, want %d", sent, got, sent-1)
		}
	}
	if got := lastLag.Load(); got != uint64(sent-1) {
		t.Fatalf("lag notify saw %d, want %d", got, sent-1)
	}
	msg, err := room.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("m%d", sent); msg.Body != want {
		t.Fatalf("survivor = %q, want %q", msg.Body, want)
	}
}

// TestStreamRecvContext: Recv honors cancellation and deadlines.
func TestStreamRecvContext(t *testing.T) {
	_, room := chatFixture(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := room.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("recv on idle stream = %v, want DeadlineExceeded", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := room.Recv(ctx2)
		done <- err
	}()
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("recv = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv did not unblock on cancel")
	}
}

// TestStreamIteratorTerminatesOnClose: ranging over All ends cleanly
// (no error yielded) when the stream closes mid-iteration, and a
// subsequent Recv reports ErrStreamClosed.
func TestStreamIteratorTerminatesOnClose(t *testing.T) {
	session, room := chatFixture(t, nil)
	if err := session.Send(context.Background(), "before close"); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		_ = room.Close()
	}()
	var got []string
	var iterErr error
	for msg, err := range room.All(context.Background()) {
		if err != nil {
			iterErr = err
			break
		}
		got = append(got, msg.Body)
	}
	if iterErr != nil {
		t.Fatalf("iterator yielded error on close: %v", iterErr)
	}
	if len(got) != 1 || got[0] != "before close" {
		t.Fatalf("iterated = %v", got)
	}
	if _, err := room.Recv(context.Background()); !errors.Is(err, globalmmcs.ErrStreamClosed) {
		t.Fatalf("recv after close = %v, want ErrStreamClosed", err)
	}
}

// TestStreamIteratorYieldsContextError: a cancelled context ends All
// with exactly one error yield.
func TestStreamIteratorYieldsContextError(t *testing.T) {
	_, room := chatFixture(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	var errs []error
	for _, err := range room.All(ctx) {
		if err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) != 1 || !errors.Is(errs[0], context.DeadlineExceeded) {
		t.Fatalf("iterator errors = %v", errs)
	}
}

// TestPublisherBatchingFacade: a batched publisher over the in-process
// transport still delivers (per-event fallback), and reliable publishes
// flush a pending wire batch promptly — asserted end to end through a
// subscribed stream.
func TestPublisherBatchingFacade(t *testing.T) {
	ctx := context.Background()
	srv := startNode(t)
	alice := newClient(t, srv, "alice")
	session, err := alice.CreateSession(ctx, "batched")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := session.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := session.Publisher(globalmmcs.Audio,
		globalmmcs.WithPublishBatching(32<<10, time.Millisecond), globalmmcs.WithTTL(4))
	if err != nil {
		t.Fatal(err)
	}
	src := globalmmcs.NewAudioSource(globalmmcs.AudioConfig{})
	for i := 0; i < 10; i++ {
		raw, err := src.NextPacket()
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	recvCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := sub.Recv(recvCtx); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConflationKeyPresence: WithConflationKey generalizes conflation
// beyond media — a presence watch keyed by user delivers only each
// user's latest state to a lagging consumer, with the merges counted as
// drops.
func TestConflationKeyPresence(t *testing.T) {
	ctx := context.Background()
	srv := startNode(t)
	watcher := newClient(t, srv, "watcher")
	alice := newClient(t, srv, "alice")
	bob := newClient(t, srv, "bob")

	watch, err := watcher.WatchPresence(ctx, "conf-room",
		globalmmcs.WithBuffer(1),
		globalmmcs.WithConflationKey(func(p globalmmcs.Presence) any { return p.User }))
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Close()

	// Flood updates for two users while the watcher reads nothing: the
	// keyed pending set must collapse each user's backlog to one entry.
	const updates = 10
	for i := 0; i < updates; i++ {
		status := globalmmcs.StatusOnline
		if i == updates-1 {
			status = globalmmcs.StatusBusy
		}
		if err := alice.SetPresence(ctx, "conf-room", status, "a"); err != nil {
			t.Fatal(err)
		}
		status = globalmmcs.StatusOnline
		if i == updates-1 {
			status = globalmmcs.StatusAway
		}
		if err := bob.SetPresence(ctx, "conf-room", status, "b"); err != nil {
			t.Fatal(err)
		}
	}

	// Wait until the pump has conflated a meaningful share of the flood.
	deadline := time.Now().Add(5 * time.Second)
	for watch.Drops() < updates && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if watch.Drops() < updates {
		t.Fatalf("only %d conflation drops for %d superseded updates", watch.Drops(), 2*updates-4)
	}

	// Drain: the last state seen per user must be the final one.
	last := make(map[string]globalmmcs.PresenceStatus)
	received := 0
	recvCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	for len(last) < 2 || last["alice"] != globalmmcs.StatusBusy || last["bob"] != globalmmcs.StatusAway {
		p, err := watch.Recv(recvCtx)
		if err != nil {
			t.Fatalf("final states never arrived (saw %v after %d events): %v", last, received, err)
		}
		last[p.User] = p.Status
		received++
	}
	if received >= 2*updates {
		t.Fatalf("received %d of %d published updates; conflation delivered no win", received, 2*updates)
	}
}
