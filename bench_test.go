// Benchmarks regenerating the paper's evaluation (scaled so the full
// suite runs in minutes; cmd/gmmcs-bench performs the paper-scale runs
// recorded in EXPERIMENTS.md):
//
//   - BenchmarkFigure3/* — Figure 3 delay+jitter, broker vs JMF reflector
//   - BenchmarkAudioCapacity/* — §3.2 ">1000 audio clients" claim
//   - BenchmarkVideoCapacity/* — §3.2 ">400 video clients" claim
//   - BenchmarkBrokerChainDepth/* — ablation: distributed-routing cost
//   - BenchmarkRoutingMode/* — ablation: client-server vs peer-to-peer
//   - BenchmarkReflectorReprocess/* — ablation: JMF re-packetization cost
//   - BenchmarkFanout* / BenchmarkTransport* — microbenchmarks
package globalmmcs_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/bench"
	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/reflector"
	"github.com/globalmmcs/globalmmcs/internal/transport"
)

// fig3Scaled is the scaled-down Figure 3 configuration used in-suite.
func fig3Scaled(system bench.System) bench.Fig3Config {
	return bench.Fig3Config{
		System:    system,
		Receivers: 64,
		Measured:  6,
		Packets:   150,
		Testbed: bench.Testbed{
			PerSendCost:  150 * time.Microsecond, // 64 × 150µs ≈ 9.6ms ≈ saturation
			JMFExtraCost: 20 * time.Microsecond,
		},
	}
}

// BenchmarkFigure3 regenerates the Figure 3 comparison at reduced scale.
func BenchmarkFigure3(b *testing.B) {
	for _, system := range []bench.System{bench.SystemBroker, bench.SystemReflector} {
		b.Run(system.String(), func(b *testing.B) {
			for b.Loop() {
				res, err := bench.RunFig3(fig3Scaled(system))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MeanDelayMs, "ms-delay")
				b.ReportMetric(res.MeanJitterMs, "ms-jitter")
				b.ReportMetric(float64(res.Lost), "lost")
			}
		})
	}
}

// BenchmarkAudioCapacity sweeps audio receiver counts on one broker.
func BenchmarkAudioCapacity(b *testing.B) {
	for _, clients := range []int{100, 250, 500} {
		b.Run(strconv.Itoa(clients)+"clients", func(b *testing.B) {
			for b.Loop() {
				res, err := bench.RunCapacity(bench.CapacityConfig{
					Kind:    bench.MediaAudio,
					Clients: clients,
					Packets: 100, // 2s of audio per iteration
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MeanDelayMs, "ms-delay")
				b.ReportMetric(res.LossRate*100, "loss%")
				reportQuality(b, res)
			}
		})
	}
}

// BenchmarkVideoCapacity sweeps video receiver counts on one broker.
func BenchmarkVideoCapacity(b *testing.B) {
	for _, clients := range []int{50, 100, 200} {
		b.Run(strconv.Itoa(clients)+"clients", func(b *testing.B) {
			for b.Loop() {
				res, err := bench.RunCapacity(bench.CapacityConfig{
					Kind:    bench.MediaVideo,
					Clients: clients,
					Packets: 170, // ~2s of video
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.MeanDelayMs, "ms-delay")
				b.ReportMetric(res.LossRate*100, "loss%")
				reportQuality(b, res)
			}
		})
	}
}

func reportQuality(b *testing.B, res *bench.CapacityResult) {
	b.Helper()
	quality := 1.0
	if !res.GoodQuality {
		quality = 0
	}
	b.ReportMetric(quality, "good-quality")
}

// BenchmarkBrokerChainDepth measures added latency per broker hop — the
// cost of the distributed (multi-broker) deployment of Figure 1.
func BenchmarkBrokerChainDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dbrokers", depth), func(b *testing.B) {
			brokers := make([]*broker.Broker, depth)
			for i := range brokers {
				brokers[i] = broker.New(broker.Config{ID: fmt.Sprintf("chain-%d", i)})
				defer brokers[i].Stop()
			}
			for i := 1; i < depth; i++ {
				a, peer := transport.Pipe("x", "y")
				go brokers[i].AcceptConn(peer)
				if err := brokers[i-1].ConnectPeerConn(a); err != nil {
					b.Fatal(err)
				}
			}
			pub, err := brokers[0].LocalClient("pub", transport.LinkProfile{})
			if err != nil {
				b.Fatal(err)
			}
			defer pub.Close()
			subC, err := brokers[depth-1].LocalClient("sub", transport.LinkProfile{})
			if err != nil {
				b.Fatal(err)
			}
			defer subC.Close()
			sub, err := subC.Subscribe("/chain/bench", 4096)
			if err != nil {
				b.Fatal(err)
			}
			// Wait for the advertisement to reach the chain head.
			waitRoutable(b, pub, sub)

			payload := make([]byte, 1200)
			b.ResetTimer()
			for b.Loop() {
				if err := pub.Publish("/chain/bench", event.KindRTP, payload); err != nil {
					b.Fatal(err)
				}
				if _, ok := <-sub.C(); !ok {
					b.Fatal("subscription closed")
				}
			}
		})
	}
}

// waitRoutable publishes probes until one arrives, draining the probe.
func waitRoutable(b *testing.B, pub *broker.Client, sub *broker.Subscription) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := pub.Publish(sub.Pattern(), event.KindData, nil); err != nil {
			b.Fatal(err)
		}
		select {
		case <-sub.C():
			// Drain any additional buffered probes.
			for {
				select {
				case <-sub.C():
				default:
					return
				}
			}
		case <-time.After(50 * time.Millisecond):
		}
	}
	b.Fatal("route never established")
}

// BenchmarkRoutingMode compares client-server routing with P2P flooding
// across a 3-broker chain.
func BenchmarkRoutingMode(b *testing.B) {
	for _, mode := range []broker.Mode{broker.ModeClientServer, broker.ModePeerToPeer} {
		b.Run(mode.String(), func(b *testing.B) {
			brokers := make([]*broker.Broker, 3)
			for i := range brokers {
				brokers[i] = broker.New(broker.Config{ID: fmt.Sprintf("m-%d", i), Mode: mode})
				defer brokers[i].Stop()
			}
			for i := 1; i < len(brokers); i++ {
				a, peer := transport.Pipe("x", "y")
				go brokers[i].AcceptConn(peer)
				if err := brokers[i-1].ConnectPeerConn(a); err != nil {
					b.Fatal(err)
				}
			}
			pub, err := brokers[0].LocalClient("pub", transport.LinkProfile{})
			if err != nil {
				b.Fatal(err)
			}
			defer pub.Close()
			subC, err := brokers[2].LocalClient("sub", transport.LinkProfile{})
			if err != nil {
				b.Fatal(err)
			}
			defer subC.Close()
			sub, err := subC.Subscribe("/mode/bench", 4096)
			if err != nil {
				b.Fatal(err)
			}
			waitRoutable(b, pub, sub)
			payload := make([]byte, 1200)
			b.ResetTimer()
			for b.Loop() {
				if err := pub.Publish("/mode/bench", event.KindRTP, payload); err != nil {
					b.Fatal(err)
				}
				if _, ok := <-sub.C(); !ok {
					b.Fatal("subscription closed")
				}
			}
		})
	}
}

// BenchmarkReflectorReprocess isolates the cost of JMF's per-receiver
// re-packetization (ablation on the baseline's design).
func BenchmarkReflectorReprocess(b *testing.B) {
	for _, reprocess := range []bool{true, false} {
		b.Run(fmt.Sprintf("reprocess=%t", reprocess), func(b *testing.B) {
			r := reflector.NewWithConfig(reflector.Config{ReprocessRTP: reprocess})
			defer r.Stop()
			const receivers = 64
			for i := range receivers {
				near, far := transport.Pipe(fmt.Sprintf("r%d", i), "reflector")
				if err := r.AddReceiver(near); err != nil {
					b.Fatal(err)
				}
				go drainConnB(far)
			}
			srcNear, srcFar := transport.Pipe("reflector", "src")
			r.ServeSourceAsync(srcNear)
			pub := reflector.NewConnPublisher(srcFar, "src")
			v := media.NewVideoSource(media.VideoConfig{})
			frame := v.NextFrame()
			raw, err := frame[0].Marshal()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for b.Loop() {
				e := event.New("/m/v", event.KindRTP, raw)
				if err := pub.PublishEvent(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func drainConnB(c transport.Conn) {
	for {
		if _, err := c.Recv(); err != nil {
			return
		}
	}
}

// BenchmarkFanout measures single-broker fan-out cost per delivered
// event at different subscriber counts.
func BenchmarkFanout(b *testing.B) {
	for _, subs := range []int{10, 100, 400} {
		b.Run(strconv.Itoa(subs)+"subs", func(b *testing.B) {
			br := broker.New(broker.Config{ID: "fan", QueueDepth: 65536})
			defer br.Stop()
			for i := range subs {
				c, err := br.LocalClient(fmt.Sprintf("s%d", i), transport.LinkProfile{})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				sub, err := c.Subscribe("/fan/bench", 65536)
				if err != nil {
					b.Fatal(err)
				}
				go func() {
					for range sub.C() {
					}
				}()
			}
			pub, err := br.LocalClient("pub", transport.LinkProfile{})
			if err != nil {
				b.Fatal(err)
			}
			defer pub.Close()
			payload := make([]byte, 1200)
			b.ResetTimer()
			for b.Loop() {
				if err := pub.Publish("/fan/bench", event.KindRTP, payload); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(subs), "fanout")
		})
	}
}

// BenchmarkTransportThroughput compares event throughput across the
// three transports.
func BenchmarkTransportThroughput(b *testing.B) {
	run := func(b *testing.B, pubConn, subConn transport.Conn) {
		b.Helper()
		go drainConnB(subConn)
		e := event.New("/t/bench", event.KindRTP, make([]byte, 1200))
		e.Source, e.ID = "bench", 1
		b.ResetTimer()
		for b.Loop() {
			if err := pubConn.Send(e); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("mem", func(b *testing.B) {
		a, z := transport.Pipe("a", "z")
		defer a.Close()
		run(b, a, z)
	})
	b.Run("tcp", func(b *testing.B) {
		l, err := transport.Listen("tcp://127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		accepted := make(chan transport.Conn, 1)
		go func() {
			c, err := l.Accept()
			if err == nil {
				accepted <- c
			}
		}()
		client, err := transport.Dial(l.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		server := <-accepted
		run(b, client, server)
	})
	b.Run("udp", func(b *testing.B) {
		l, err := transport.Listen("udp://127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		client, err := transport.Dial(l.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		// Prime the server conn.
		e := event.New("/t/bench", event.KindData, nil)
		e.Source, e.ID = "bench", 1
		if err := client.Send(e); err != nil {
			b.Fatal(err)
		}
		server, err := l.Accept()
		if err != nil {
			b.Fatal(err)
		}
		run(b, client, server)
	})
}

// BenchmarkRouteCache isolates the broker's per-topic match memoisation —
// one of the "optimizations on the message transmission" the paper
// credits for NaradaBrokering's media performance.
func BenchmarkRouteCache(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "enabled"
		if disabled {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			br := broker.New(broker.Config{ID: "rc", QueueDepth: 65536, DisableRouteCache: disabled})
			defer br.Stop()
			// A realistic subscription table: many sessions, some wildcards.
			for i := range 200 {
				c, err := br.LocalClient(fmt.Sprintf("c%d", i), transport.LinkProfile{})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				pattern := fmt.Sprintf("/xgsp/session/s%d/video", i)
				if i%10 == 0 {
					pattern = "/xgsp/session/*/video"
				}
				sub, err := c.Subscribe(pattern, 65536)
				if err != nil {
					b.Fatal(err)
				}
				go func() {
					for range sub.C() {
					}
				}()
			}
			pub, err := br.LocalClient("pub", transport.LinkProfile{})
			if err != nil {
				b.Fatal(err)
			}
			defer pub.Close()
			payload := make([]byte, 1200)
			b.ResetTimer()
			for b.Loop() {
				if err := pub.Publish("/xgsp/session/s100/video", event.KindRTP, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
