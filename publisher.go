package globalmmcs

import (
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
)

// PublishOption configures a Publisher at Session.Publisher.
type PublishOption func(*publishConfig)

type publishConfig struct {
	reliable      bool
	ttl           int
	batching      bool
	maxBatchBytes int
	flushInterval time.Duration
}

// WithReliable publishes every event on the reliable delivery profile
// (acknowledged and retransmitted hop by hop). Reliable events also
// force any pending batch onto the wire so signalling never queues
// behind media.
func WithReliable() PublishOption {
	return func(c *publishConfig) { c.reliable = true }
}

// WithTTL bounds the broker-hop budget of every published event
// (default 16). Lower it to keep flooded events local in peer-to-peer
// broker networks.
func WithTTL(hops int) PublishOption {
	return func(c *publishConfig) { c.ttl = hops }
}

// WithPublishBatching aggregates encoded events client-side and writes
// them to the broker in one system call per batch — the publish-side
// mirror of the broker's outbound batching, built for gateway-style
// senders pumping many streams. maxBatchBytes bounds a batch (0: 256
// KiB); flushInterval bounds how long a partial batch may linger (0:
// 1 ms). Batching only engages on wire transports; in-process clients
// keep per-event delivery.
func WithPublishBatching(maxBatchBytes int, flushInterval time.Duration) PublishOption {
	return func(c *publishConfig) {
		c.batching = true
		c.maxBatchBytes = maxBatchBytes
		c.flushInterval = flushInterval
	}
}

// Publisher is a send handle bound to one media channel of a session,
// returned by Session.Publisher. It is the publish-side counterpart of
// Stream: per-handle QoS (reliability, TTL, client-side batching) is
// fixed at creation with PublishOptions. Safe for concurrent use.
type Publisher struct {
	p        *broker.Publisher
	topic    string
	kind     event.Kind
	reliable bool
	ttl      uint8
}

// Publisher returns a send handle publishing raw payloads onto one of
// the session's media channels. Unlike Session.Sender it does not pace:
// it publishes exactly what it is given, as fast as it is given —
// combine with WithPublishBatching when relaying many streams.
func (s *Session) Publisher(kind MediaKind, opts ...PublishOption) (*Publisher, error) {
	stream, ok := s.stream(kind)
	if !ok {
		return nil, tag(ErrNoSuchMedia, errMediaKind(kind))
	}
	var cfg publishConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	p := &Publisher{
		p: s.c.BC.Publisher(broker.PublisherConfig{
			Batching:      cfg.batching,
			MaxBatchBytes: cfg.maxBatchBytes,
			FlushInterval: cfg.flushInterval,
		}),
		topic:    stream.Topic,
		kind:     eventKindOf(kind),
		reliable: cfg.reliable,
	}
	if cfg.ttl > 0 && cfg.ttl <= 255 {
		p.ttl = uint8(cfg.ttl)
	}
	return p, nil
}

func eventKindOf(kind MediaKind) event.Kind {
	switch kind {
	case Audio, Video:
		return event.KindRTP
	case Chat:
		return event.KindChat
	case Control:
		return event.KindControl
	default:
		return event.KindData
	}
}

// Publish sends one payload (for Audio/Video channels, RTP wire bytes).
// The payload may be reused once Publish returns. With batching the
// event may linger up to the flush interval before hitting the wire;
// Flush forces it out.
func (p *Publisher) Publish(payload []byte) error {
	e := event.New(p.topic, p.kind, payload)
	e.Reliable = p.reliable
	if p.ttl > 0 {
		e.TTL = p.ttl
	}
	return wrapErr(p.p.Publish(e))
}

// Batched reports whether publishes aggregate into batched writes
// (false on in-process connections even when requested).
func (p *Publisher) Batched() bool { return p.p.Batched() }

// Flush forces any pending batch onto the wire.
func (p *Publisher) Flush() error { return wrapErr(p.p.Flush()) }

// Close flushes and retires the handle; the client connection stays
// open. Idempotent.
func (p *Publisher) Close() error { return wrapErr(p.p.Close()) }
