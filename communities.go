package globalmmcs

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"github.com/globalmmcs/globalmmcs/internal/accessgrid"
	"github.com/globalmmcs/globalmmcs/internal/admire"
	"github.com/globalmmcs/globalmmcs/internal/mcast"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
)

// AdmireCommunity is an in-process simulation of the Admire
// videoconferencing system (the paper's §3.1 Chinese community): a
// conference server publishing its collaboration interface as a WSDL-CI
// web service, which Server.LinkAdmire bridges sessions to.
type AdmireCommunity struct {
	srv *admire.Server
	web *http.Server
	ln  net.Listener
	ws  *wsci.Client
}

// StartAdmireCommunity starts the community server and serves its
// WSDL-CI interface on a loopback HTTP endpoint.
func StartAdmireCommunity() (*AdmireCommunity, error) {
	srv := admire.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Stop()
		return nil, fmt.Errorf("globalmmcs: binding admire web service: %w", err)
	}
	web := &http.Server{Handler: srv.WebService()}
	go func() { _ = web.Serve(ln) }()
	endpoint := "http://" + ln.Addr().String()
	return &AdmireCommunity{srv: srv, web: web, ln: ln, ws: wsci.NewClient(endpoint)}, nil
}

// Endpoint returns the community's WSDL-CI service URL — what
// Server.LinkAdmire takes.
func (a *AdmireCommunity) Endpoint() string { return "http://" + a.ln.Addr().String() }

// WSDL renders the community's interface document.
func (a *AdmireCommunity) WSDL() string { return a.srv.WebService().WSDL(a.Endpoint()) }

// CreateConference starts a conference over the community's own SOAP
// interface (the same path the XGSP web server uses) and returns its id.
func (a *AdmireCommunity) CreateConference(ctx context.Context, name string) (string, error) {
	var resp admire.CreateConferenceResponse
	if err := a.ws.CallContext(ctx, &admire.CreateConferenceRequest{Name: name}, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Join registers a user in a conference and returns their media
// membership.
func (a *AdmireCommunity) Join(confID, user string) (*AdmireParticipant, error) {
	m, err := a.srv.Join(confID, user)
	if err != nil {
		return nil, err
	}
	return &AdmireParticipant{m: m}, nil
}

// Stop tears the community down.
func (a *AdmireCommunity) Stop() {
	_ = a.web.Close()
	a.srv.Stop()
}

// AdmireParticipant is one user's membership in an Admire conference.
type AdmireParticipant struct {
	m *mcast.Member
}

// Send publishes RTP wire bytes into the conference.
func (p *AdmireParticipant) Send(data []byte) { p.m.Send(data) }

// Recv returns the channel delivering the conference's media.
func (p *AdmireParticipant) Recv() <-chan []byte { return p.m.Recv() }

// Leave removes the membership.
func (p *AdmireParticipant) Leave() { p.m.Leave() }

// VenueServer is an in-process Access Grid venue server whose venues
// Server.LinkAccessGrid bridges sessions to.
type VenueServer struct {
	vs *accessgrid.VenueServer
}

// NewVenueServer creates an empty venue server.
func NewVenueServer() *VenueServer {
	return &VenueServer{vs: accessgrid.NewVenueServer()}
}

// CreateVenue adds a venue with audio and video groups.
func (v *VenueServer) CreateVenue(name string) error {
	_, err := v.vs.CreateVenue(name)
	return err
}

// Enter joins a user into a venue's media groups.
func (v *VenueServer) Enter(venue, user string) (*VenueParticipant, error) {
	c, err := v.vs.Enter(venue, user)
	if err != nil {
		return nil, err
	}
	return &VenueParticipant{c: c}, nil
}

// Stop closes all venues.
func (v *VenueServer) Stop() { v.vs.Stop() }

// VenueParticipant is one user's memberships in a venue.
type VenueParticipant struct {
	c *accessgrid.VenueClient
}

// SendAudio publishes RTP wire bytes into the venue's audio group.
func (p *VenueParticipant) SendAudio(data []byte) { p.c.Audio.Send(data) }

// RecvAudio returns the channel delivering the venue's audio.
func (p *VenueParticipant) RecvAudio() <-chan []byte { return p.c.Audio.Recv() }

// SendVideo publishes RTP wire bytes into the venue's video group.
func (p *VenueParticipant) SendVideo(data []byte) { p.c.Video.Send(data) }

// RecvVideo returns the channel delivering the venue's video.
func (p *VenueParticipant) RecvVideo() <-chan []byte { return p.c.Video.Recv() }

// Leave removes the memberships.
func (p *VenueParticipant) Leave() { p.c.Leave() }
