// Quickstart: start a Global-MMCS node in-process, create a session, have
// two users join, exchange chat and a short burst of audio — using only
// the public globalmmcs SDK.
//
// Every subscription in the SDK is a Stream: chat rooms, presence
// watches and media subscriptions all deliver through the same typed
// handle, consumed with Recv (blocking, context-aware), All (a Go
// iterator) or Chan (select-based). Per-stream QoS — buffer depth, the
// full-buffer drop policy, SSRC conflation, lag callbacks — is chosen
// with options at subscribe time instead of being baked into each
// feature.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	// One call brings up the whole middleware: broker, XGSP session and
	// web servers, SIP/H.323 gateways, RTSP, IM.
	srv, err := globalmmcs.Start(ctx)
	if err != nil {
		return err
	}
	defer srv.Stop()
	readyCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.WaitReady(readyCtx); err != nil {
		return err
	}
	fmt.Println("Global-MMCS node started; web service at", srv.WebAddr()+"/ws")

	alice, err := srv.Client(ctx, "alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := srv.Client(ctx, "bob")
	if err != nil {
		return err
	}
	defer bob.Close()

	// Alice creates an ad-hoc session; both join.
	session, err := alice.CreateSession(ctx, "quickstart-demo")
	if err != nil {
		return err
	}
	fmt.Printf("session %s (%s) created with media channels:\n", session.ID(), session.Name())
	for _, m := range session.Media() {
		fmt.Printf("  %-7s -> %s\n", m.Kind, m.Topic)
	}
	if err := session.Join(ctx, "alice-desktop"); err != nil {
		return err
	}
	bobSession, err := bob.Join(ctx, session.ID(), "bob-laptop")
	if err != nil {
		return err
	}

	// Chat: bob joins the room as a Stream of ChatMessage, alice greets,
	// bob receives with Recv — one call, bounded by the context.
	room, err := bobSession.Chat(ctx)
	if err != nil {
		return err
	}
	defer room.Close()
	if err := session.Send(ctx, "hi bob — testing the new middleware"); err != nil {
		return err
	}
	recvCtx, cancelRecv := context.WithTimeout(ctx, 5*time.Second)
	msg, err := room.Recv(recvCtx)
	cancelRecv()
	if err != nil {
		return fmt.Errorf("chat message never arrived: %w", err)
	}
	fmt.Printf("chat: <%s> %s\n", msg.From, msg.Body)

	// Media: alice streams one second of audio; bob receives and
	// measures, ranging over the stream with the All iterator. The
	// subscription keeps the default media QoS (drop-oldest, 256-deep) —
	// a slow consumer would lose the stalest packets, counted on the
	// stream's Drops and the node's metrics rather than silently.
	audioSub, err := bobSession.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithBuffer(256))
	if err != nil {
		return err
	}
	recv := globalmmcs.NewMediaReceiver(globalmmcs.Audio)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p, err := range audioSub.All(ctx) {
			if err != nil {
				return
			}
			recv.Handle(p)
		}
	}()

	sender, err := session.Sender(globalmmcs.Audio)
	if err != nil {
		return err
	}
	if _, err := sender.SendAudio(ctx, globalmmcs.NewAudioSource(globalmmcs.AudioConfig{}), 50); err != nil {
		return err
	}
	time.Sleep(200 * time.Millisecond) // let the tail drain
	if err := audioSub.Close(); err != nil {
		return err
	}
	<-done

	stats := recv.Stats()
	fmt.Printf("media: bob received %d packets (%d bytes), mean delay %.2f ms, jitter %.2f ms, lost %d, stream drops %d\n",
		stats.Received, stats.Bytes, stats.MeanDelayMs, stats.JitterMs, stats.Lost, audioSub.Drops())
	fmt.Println("quickstart complete")
	return nil
}
