// Quickstart: start a Global-MMCS node in-process, create a session, have
// two users join, exchange chat and a short burst of audio — using only
// the public globalmmcs SDK.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	// One call brings up the whole middleware: broker, XGSP session and
	// web servers, SIP/H.323 gateways, RTSP, IM.
	srv, err := globalmmcs.Start(ctx)
	if err != nil {
		return err
	}
	defer srv.Stop()
	readyCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.WaitReady(readyCtx); err != nil {
		return err
	}
	fmt.Println("Global-MMCS node started; web service at", srv.WebAddr()+"/ws")

	alice, err := srv.Client(ctx, "alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := srv.Client(ctx, "bob")
	if err != nil {
		return err
	}
	defer bob.Close()

	// Alice creates an ad-hoc session; both join.
	session, err := alice.CreateSession(ctx, "quickstart-demo")
	if err != nil {
		return err
	}
	fmt.Printf("session %s (%s) created with media channels:\n", session.ID(), session.Name())
	for _, m := range session.Media() {
		fmt.Printf("  %-7s -> %s\n", m.Kind, m.Topic)
	}
	if err := session.Join(ctx, "alice-desktop"); err != nil {
		return err
	}
	bobSession, err := bob.Join(ctx, session.ID(), "bob-laptop")
	if err != nil {
		return err
	}

	// Chat: bob joins the room, alice greets.
	room, err := bobSession.Chat(ctx)
	if err != nil {
		return err
	}
	if err := session.Send(ctx, "hi bob — testing the new middleware"); err != nil {
		return err
	}
	select {
	case msg := <-room.C():
		fmt.Printf("chat: <%s> %s\n", msg.From, msg.Body)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("chat message never arrived")
	}

	// Media: alice streams one second of audio; bob receives and measures.
	audioSub, err := bobSession.Subscribe(ctx, globalmmcs.Audio, 256)
	if err != nil {
		return err
	}
	recv := globalmmcs.NewMediaReceiver(globalmmcs.Audio)
	done := make(chan struct{})
	go func() {
		defer close(done)
		recv.Drain(ctx, audioSub)
	}()

	sender, err := session.Sender(globalmmcs.Audio)
	if err != nil {
		return err
	}
	if _, err := sender.SendAudio(ctx, globalmmcs.NewAudioSource(globalmmcs.AudioConfig{}), 50); err != nil {
		return err
	}
	time.Sleep(200 * time.Millisecond) // let the tail drain
	if err := audioSub.Cancel(); err != nil {
		return err
	}
	<-done

	stats := recv.Stats()
	fmt.Printf("media: bob received %d packets (%d bytes), mean delay %.2f ms, jitter %.2f ms, lost %d\n",
		stats.Received, stats.Bytes, stats.MeanDelayMs, stats.JitterMs, stats.Lost)
	fmt.Println("quickstart complete")
	return nil
}
