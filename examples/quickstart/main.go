// Quickstart: start a Global-MMCS node in-process, create a session, have
// two users join, exchange chat and a short burst of audio.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/globalmmcs/globalmmcs"
	"github.com/globalmmcs/globalmmcs/internal/im"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One call brings up the whole middleware: broker, XGSP session and
	// web servers, SIP/H.323 gateways, RTSP, IM.
	srv, err := globalmmcs.Start(globalmmcs.Config{})
	if err != nil {
		return err
	}
	defer srv.Stop()
	fmt.Println("Global-MMCS node started; web service at", srv.WebAddr()+"/ws")

	alice, err := srv.Client("alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := srv.Client("bob")
	if err != nil {
		return err
	}
	defer bob.Close()

	// Alice creates an ad-hoc session; both join.
	session, err := alice.CreateSession("quickstart-demo")
	if err != nil {
		return err
	}
	fmt.Printf("session %s (%s) created with media channels:\n", session.ID, session.Name)
	for _, m := range session.Media {
		fmt.Printf("  %-7s -> %s\n", m.Type, m.Topic)
	}
	if _, err := alice.Join(session.ID, "alice-desktop"); err != nil {
		return err
	}
	if _, err := bob.Join(session.ID, "bob-laptop"); err != nil {
		return err
	}

	// Chat: bob joins the room, alice greets.
	room, err := bob.Chat.JoinRoom(session.ID)
	if err != nil {
		return err
	}
	if err := alice.Chat.Send(session.ID, "hi bob — testing the new middleware"); err != nil {
		return err
	}
	select {
	case e := <-room.C():
		msg, err := im.ParseChat(e)
		if err != nil {
			return err
		}
		fmt.Printf("chat: <%s> %s\n", msg.From, msg.Body)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("chat message never arrived")
	}

	// Media: alice streams one second of audio; bob receives and measures.
	audioSub, err := bob.SubscribeMedia(session, xgsp.MediaAudio, 256)
	if err != nil {
		return err
	}
	recv := media.NewReceiver(media.ReceiverConfig{ClockRate: rtp.AudioClockRate})
	done := make(chan struct{})
	go func() {
		defer close(done)
		recv.Drain(audioSub.C(), nil)
	}()

	sender, err := alice.MediaSender(session, xgsp.MediaAudio)
	if err != nil {
		return err
	}
	if _, err := sender.SendAudio(media.NewAudioSource(media.AudioConfig{}), 50, nil); err != nil {
		return err
	}
	time.Sleep(200 * time.Millisecond) // let the tail drain
	if err := audioSub.Cancel(); err != nil {
		return err
	}
	<-done

	snap := recv.Snapshot()
	fmt.Printf("media: bob received %d packets (%d bytes), mean delay %.2f ms, jitter %.2f ms, lost %d\n",
		snap.Received, snap.Bytes, snap.MeanDelayMs, snap.JitterMs, snap.Lost)
	fmt.Println("quickstart complete")
	return nil
}
