// Videoconference: the paper's core scenario — heterogeneous endpoints in
// one session. A native client publishes video, a SIP endpoint and an
// H.323 terminal join through their respective gateways, and everybody's
// media meets on the session topics. Floor control arbitrates who may
// send.
//
// Run with:
//
//	go run ./examples/videoconference
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/globalmmcs/globalmmcs"
	"github.com/globalmmcs/globalmmcs/internal/h323"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/sip"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv, err := globalmmcs.Start(globalmmcs.Config{})
	if err != nil {
		return err
	}
	defer srv.Stop()

	// The conference owner creates the session.
	host, err := srv.Client("prof-fox")
	if err != nil {
		return err
	}
	defer host.Close()
	session, err := host.CreateSession("grid-computing-seminar")
	if err != nil {
		return err
	}
	if _, err := host.Join(session.ID, "podium"); err != nil {
		return err
	}
	fmt.Printf("seminar session %s created\n", session.ID)

	// --- A SIP endpoint joins through the SIP gateway. ----------------
	sipEP, err := sip.NewEndpoint("wenjun", srv.SIP.Addr())
	if err != nil {
		return err
	}
	defer sipEP.Close()
	if err := sipEP.Register(srv.SIP.Domain(), time.Hour); err != nil {
		return err
	}
	sipAudio, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer sipAudio.Close()
	sipCall, err := sipEP.Invite(srv.SIP.Domain(), session.ID,
		sipAudio.LocalAddr().(*net.UDPAddr).Port, 0)
	if err != nil {
		return err
	}
	fmt.Println("SIP endpoint wenjun joined via gateway")

	// --- An H.323 terminal joins through gatekeeper + gateway. --------
	h323EP, err := h323.NewEndpoint("auyar", srv.Gatekeeper.Addr())
	if err != nil {
		return err
	}
	defer h323EP.Close()
	if err := h323EP.Discover(); err != nil {
		return err
	}
	if err := h323EP.Register(); err != nil {
		return err
	}
	h323Audio, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer h323Audio.Close()
	h323Call, err := h323EP.PlaceCall(session.ID, map[string]string{
		"audio": h323Audio.LocalAddr().String(),
	})
	if err != nil {
		return err
	}
	fmt.Println("H.323 terminal auyar joined via gatekeeper/gateway")

	// Membership now spans three communities.
	info := srv.XGSP.Lookup(session.ID)
	fmt.Printf("members: %v\n", info.Members)

	// --- Floor control. ------------------------------------------------
	if err := host.XGSP.RequestFloor(session.ID, xgsp.MediaVideo); err != nil {
		return err
	}
	fmt.Println("prof-fox holds the video floor; streaming 2 seconds of video")

	sender, err := host.MediaSender(session, xgsp.MediaVideo)
	if err != nil {
		return err
	}
	src := media.NewVideoSource(media.VideoConfig{})
	sent, err := sender.SendVideo(src, 150, nil)
	if err != nil {
		return err
	}
	fmt.Printf("published %d video packets at ~600 Kbps\n", sent)

	// The SIP endpoint sends audio through its gateway port; the H.323
	// endpoint hears it on its own RTP socket.
	gwAudio, ok := sipCall.AudioAddr()
	if !ok {
		return fmt.Errorf("sip answer lacks audio")
	}
	gwAddr, err := net.ResolveUDPAddr("udp", gwAudio)
	if err != nil {
		return err
	}
	audioSrc := media.NewAudioSource(media.AudioConfig{})
	for range 25 {
		raw, err := audioSrc.NextPacket().Marshal()
		if err != nil {
			return err
		}
		if _, err := sipAudio.WriteTo(raw, gwAddr); err != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := h323Audio.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	buf := make([]byte, 2048)
	n, _, err := h323Audio.ReadFrom(buf)
	if err != nil {
		return fmt.Errorf("h323 endpoint heard nothing: %w", err)
	}
	fmt.Printf("H.323 endpoint received SIP endpoint's audio (%d bytes RTP) — cross-community media works\n", n)

	// Tidy teardown.
	if err := host.XGSP.ReleaseFloor(session.ID, xgsp.MediaVideo); err != nil {
		return err
	}
	if err := sipEP.Hangup(sipCall); err != nil {
		return err
	}
	if err := h323Call.Hangup(); err != nil {
		return err
	}
	info = srv.XGSP.Lookup(session.ID)
	fmt.Printf("members after hangups: %v\n", info.Members)
	fmt.Println("videoconference example complete")
	return nil
}
