// Videoconference: the paper's core scenario — heterogeneous endpoints in
// one session. A native client publishes video, a SIP endpoint and an
// H.323 terminal join through their respective gateways, and everybody's
// media meets on the session topics. Floor control arbitrates who may
// send.
//
// Run with:
//
//	go run ./examples/videoconference
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	srv, err := globalmmcs.Start(ctx)
	if err != nil {
		return err
	}
	defer srv.Stop()
	readyCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.WaitReady(readyCtx); err != nil {
		return err
	}

	// The conference owner creates the session.
	host, err := srv.Client(ctx, "prof-fox")
	if err != nil {
		return err
	}
	defer host.Close()
	session, err := host.CreateSession(ctx, "grid-computing-seminar")
	if err != nil {
		return err
	}
	if err := session.Join(ctx, "podium"); err != nil {
		return err
	}
	fmt.Printf("seminar session %s created\n", session.ID())

	// --- A SIP endpoint joins through the SIP gateway. ----------------
	sipEP, err := globalmmcs.DialSIPEndpoint("wenjun", srv.SIPAddr())
	if err != nil {
		return err
	}
	defer sipEP.Close()
	if err := sipEP.Register(srv.SIPDomain(), time.Hour); err != nil {
		return err
	}
	sipAudio, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer sipAudio.Close()
	sipCall, err := sipEP.Invite(srv.SIPDomain(), session.ID(),
		sipAudio.LocalAddr().(*net.UDPAddr).Port, 0)
	if err != nil {
		return err
	}
	fmt.Println("SIP endpoint wenjun joined via gateway")

	// --- An H.323 terminal joins through gatekeeper + gateway. --------
	h323EP, err := globalmmcs.DialH323Endpoint("auyar", srv.GatekeeperAddr())
	if err != nil {
		return err
	}
	defer h323EP.Close()
	if err := h323EP.Discover(); err != nil {
		return err
	}
	if err := h323EP.Register(); err != nil {
		return err
	}
	h323Audio, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer h323Audio.Close()
	h323Call, err := h323EP.PlaceCall(session.ID(), map[string]string{
		"audio": h323Audio.LocalAddr().String(),
	})
	if err != nil {
		return err
	}
	fmt.Println("H.323 terminal auyar joined via gatekeeper/gateway")

	// Membership now spans three communities.
	if err := session.Refresh(ctx); err != nil {
		return err
	}
	for _, p := range session.Participants() {
		community := p.Community
		if community == "" {
			community = "native"
		}
		fmt.Printf("member: %s (%s)\n", p.UserID, community)
	}

	// --- Floor control. ------------------------------------------------
	if err := session.RequestFloor(ctx, globalmmcs.Video); err != nil {
		return err
	}
	fmt.Println("prof-fox holds the video floor; streaming 2 seconds of video")

	// Watch the session's raw event stream while the video flows: every
	// modality — RTP, chat, signalling — is an event on the broker
	// substrate, and Session.Events taps it directly.
	events, err := session.Events(ctx, globalmmcs.WithBuffer(1024))
	if err != nil {
		return err
	}
	defer events.Close()

	sender, err := session.Sender(globalmmcs.Video)
	if err != nil {
		return err
	}
	src := globalmmcs.NewVideoSource(globalmmcs.VideoConfig{})
	sent, err := sender.SendVideo(ctx, src, 150)
	if err != nil {
		return err
	}
	fmt.Printf("published %d video packets at ~600 Kbps\n", sent)

	// A gateway-style bulk sender: the batched Publisher hands the
	// broker one write per batch instead of one per packet — how a
	// relay pumping many RTP streams would publish.
	bulk, err := session.Publisher(globalmmcs.Audio,
		globalmmcs.WithPublishBatching(64<<10, time.Millisecond))
	if err != nil {
		return err
	}
	bulkSrc := globalmmcs.NewAudioSource(globalmmcs.AudioConfig{SSRC: 0x42})
	for range 50 {
		pkt, err := bulkSrc.NextPacket()
		if err != nil {
			return err
		}
		if err := bulk.Publish(pkt); err != nil {
			return err
		}
	}
	if err := bulk.Close(); err != nil {
		return err
	}
	fmt.Println("bulk-published 50 more packets through the batching publisher")

	// Tally what the raw event tap saw.
	tallyCtx, cancelTally := context.WithTimeout(ctx, 2*time.Second)
	kinds := map[string]int{}
	for kinds["rtp"] < sent+50 {
		e, err := events.Recv(tallyCtx)
		if err != nil {
			break
		}
		kinds[e.Kind]++
	}
	cancelTally()
	fmt.Printf("raw session event tap saw %d rtp events\n", kinds["rtp"])

	// The SIP endpoint sends audio through its gateway port; the H.323
	// endpoint hears it on its own RTP socket.
	gwAudio, ok := sipCall.AudioAddr()
	if !ok {
		return fmt.Errorf("sip answer lacks audio")
	}
	gwAddr, err := net.ResolveUDPAddr("udp", gwAudio)
	if err != nil {
		return err
	}
	audioSrc := globalmmcs.NewAudioSource(globalmmcs.AudioConfig{})
	for range 25 {
		raw, err := audioSrc.NextPacket()
		if err != nil {
			return err
		}
		if _, err := sipAudio.WriteTo(raw, gwAddr); err != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := h323Audio.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return err
	}
	buf := make([]byte, 2048)
	n, _, err := h323Audio.ReadFrom(buf)
	if err != nil {
		return fmt.Errorf("h323 endpoint heard nothing: %w", err)
	}
	fmt.Printf("H.323 endpoint received SIP endpoint's audio (%d bytes RTP) — cross-community media works\n", n)

	// Tidy teardown.
	if err := session.ReleaseFloor(ctx, globalmmcs.Video); err != nil {
		return err
	}
	if err := sipEP.Hangup(sipCall); err != nil {
		return err
	}
	if err := h323Call.Hangup(); err != nil {
		return err
	}
	if err := session.Refresh(ctx); err != nil {
		return err
	}
	fmt.Printf("members after hangups: %d\n", len(session.Participants()))
	fmt.Println("videoconference example complete")
	return nil
}
