// Community bridge: the paper's global-collaboration scenario — a
// Global-MMCS session in the US linked with an Admire conference in
// China (over its rendezvous web service) and an Access Grid venue, so
// participants of three heterogeneous systems share one media space.
//
// Run with:
//
//	go run ./examples/community-bridge
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	srv, err := globalmmcs.Start(ctx)
	if err != nil {
		return err
	}
	defer srv.Stop()
	readyCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.WaitReady(readyCtx); err != nil {
		return err
	}

	// --- The Admire community (Beihang side) runs its own server and
	// publishes its collaboration interface as a WSDL-CI web service.
	adm, err := globalmmcs.StartAdmireCommunity()
	if err != nil {
		return err
	}
	defer adm.Stop()
	fmt.Println("Admire community service at", adm.Endpoint())
	fmt.Println("Admire WSDL:")
	fmt.Println(indent(adm.WSDL(), "  "))

	// Create the Admire conference over SOAP, as the XGSP web server
	// would.
	confID, err := adm.CreateConference(ctx, "us-china-seminar")
	if err != nil {
		return err
	}

	// --- An Access Grid venue server with one venue.
	venues := globalmmcs.NewVenueServer()
	defer venues.Stop()
	if err := venues.CreateVenue("pacific-room"); err != nil {
		return err
	}

	// --- The Global-MMCS session that glues them together.
	host, err := srv.Client(ctx, "gcf")
	if err != nil {
		return err
	}
	defer host.Close()
	session, err := host.CreateSession(ctx, "us-china-seminar")
	if err != nil {
		return err
	}
	if err := srv.LinkAdmire(ctx, session.ID(), confID, adm.Endpoint()); err != nil {
		return err
	}
	if err := srv.LinkAccessGrid(ctx, session.ID(), venues, "pacific-room"); err != nil {
		return err
	}
	fmt.Printf("session %s bridged to Admire conference %s and AG venue pacific-room\n",
		session.ID(), confID)

	// Participants in each community.
	admUser, err := adm.Join(confID, "wang-beihang")
	if err != nil {
		return err
	}
	agUser, err := venues.Enter("pacific-room", "anl-node")
	if err != nil {
		return err
	}
	mmcsSub, err := session.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithBuffer(256))
	if err != nil {
		return err
	}

	// The Admire participant speaks; both the MMCS user and the AG venue
	// hear it.
	src := globalmmcs.NewAudioSource(globalmmcs.AudioConfig{})
	raw, err := src.NextPacket()
	if err != nil {
		return err
	}
	admUser.Send(raw)

	pktCtx, cancelPkt := context.WithTimeout(ctx, 5*time.Second)
	pkt, err := mmcsSub.Recv(pktCtx)
	cancelPkt()
	if err != nil {
		return fmt.Errorf("admire audio never reached MMCS: %w", err)
	}
	p, err := pkt.RTP()
	if err != nil {
		return err
	}
	fmt.Printf("MMCS user heard Admire audio (seq %d)\n", p.SequenceNumber)
	select {
	case data := <-agUser.RecvAudio():
		p, err := globalmmcs.ParseRTP(data)
		if err != nil {
			return err
		}
		fmt.Printf("AG venue heard Admire audio (seq %d)\n", p.SequenceNumber)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("admire audio never reached the AG venue")
	}

	// And back: the AG participant answers; Admire hears it.
	raw2, err := src.NextPacket()
	if err != nil {
		return err
	}
	agUser.SendAudio(raw2)
	select {
	case data := <-admUser.Recv():
		p, err := globalmmcs.ParseRTP(data)
		if err != nil {
			return err
		}
		fmt.Printf("Admire participant heard AG audio (seq %d)\n", p.SequenceNumber)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("AG audio never reached Admire")
	}
	fmt.Println("three communities, one session — bridge example complete")
	return nil
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}
