// Community bridge: the paper's global-collaboration scenario — a
// Global-MMCS session in the US linked with an Admire conference in
// China (over its rendezvous web service) and an Access Grid venue, so
// participants of three heterogeneous systems share one media space.
//
// Run with:
//
//	go run ./examples/community-bridge
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/globalmmcs/globalmmcs"
	"github.com/globalmmcs/globalmmcs/internal/accessgrid"
	"github.com/globalmmcs/globalmmcs/internal/admire"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
	"github.com/globalmmcs/globalmmcs/internal/wsci"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv, err := globalmmcs.Start(globalmmcs.Config{})
	if err != nil {
		return err
	}
	defer srv.Stop()

	// --- The Admire community (Beihang side) runs its own server and
	// publishes its collaboration interface as a WSDL-CI web service.
	adm := admire.NewServer()
	defer adm.Stop()
	admHTTP := &http.Server{Handler: adm.WebService()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = admHTTP.Serve(ln) }()
	defer admHTTP.Close()
	admireEndpoint := "http://" + ln.Addr().String()
	fmt.Println("Admire community service at", admireEndpoint)
	fmt.Println("Admire WSDL:")
	fmt.Println(indent(adm.WebService().WSDL(admireEndpoint), "  "))

	// Create the Admire conference over SOAP, as the XGSP web server
	// would.
	ws := wsci.NewClient(admireEndpoint)
	var conf admire.CreateConferenceResponse
	if err := ws.Call(&admire.CreateConferenceRequest{Name: "us-china-seminar"}, &conf); err != nil {
		return err
	}

	// --- An Access Grid venue server with one venue.
	venues := accessgrid.NewVenueServer()
	defer venues.Stop()
	if _, err := venues.CreateVenue("pacific-room"); err != nil {
		return err
	}

	// --- The Global-MMCS session that glues them together.
	host, err := srv.Client("gcf")
	if err != nil {
		return err
	}
	defer host.Close()
	session, err := host.CreateSession("us-china-seminar")
	if err != nil {
		return err
	}
	if _, err := srv.LinkAdmire(session.ID, conf.ID, admireEndpoint); err != nil {
		return err
	}
	if _, err := srv.LinkAccessGrid(session.ID, venues, "pacific-room"); err != nil {
		return err
	}
	fmt.Printf("session %s bridged to Admire conference %s and AG venue pacific-room\n",
		session.ID, conf.ID)

	// Participants in each community.
	admUser, err := adm.Join(conf.ID, "wang-beihang")
	if err != nil {
		return err
	}
	agUser, err := venues.Enter("pacific-room", "anl-node")
	if err != nil {
		return err
	}
	mmcsSub, err := host.SubscribeMedia(session, xgsp.MediaAudio, 256)
	if err != nil {
		return err
	}

	// The Admire participant speaks; both the MMCS user and the AG venue
	// hear it.
	src := media.NewAudioSource(media.AudioConfig{})
	raw, err := src.NextPacket().Marshal()
	if err != nil {
		return err
	}
	admUser.Send(raw)

	select {
	case e := <-mmcsSub.C():
		var p rtp.Packet
		if err := p.Unmarshal(e.Payload); err != nil {
			return err
		}
		fmt.Printf("MMCS user heard Admire audio (seq %d)\n", p.SequenceNumber)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("admire audio never reached MMCS")
	}
	select {
	case data := <-agUser.Audio.Recv():
		var p rtp.Packet
		if err := p.Unmarshal(data); err != nil {
			return err
		}
		fmt.Printf("AG venue heard Admire audio (seq %d)\n", p.SequenceNumber)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("admire audio never reached the AG venue")
	}

	// And back: the AG participant answers; Admire hears it.
	raw2, err := src.NextPacket().Marshal()
	if err != nil {
		return err
	}
	agUser.Audio.Send(raw2)
	select {
	case data := <-admUser.Recv():
		var p rtp.Packet
		if err := p.Unmarshal(data); err != nil {
			return err
		}
		fmt.Printf("Admire participant heard AG audio (seq %d)\n", p.SequenceNumber)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("AG audio never reached Admire")
	}
	fmt.Println("three communities, one session — bridge example complete")
	return nil
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}
