// Distance lecture: the streaming scenario the paper motivates — a
// lecturer publishes audio into a session, remote students watch through
// Real/Windows-Media-style RTSP players (no conferencing client needed),
// ask questions over the session chat room, and the whole lecture is
// archived and replayed.
//
// Run with:
//
//	go run ./examples/distance-lecture
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"github.com/globalmmcs/globalmmcs"
	"github.com/globalmmcs/globalmmcs/internal/im"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/streaming"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	srv, err := globalmmcs.Start(globalmmcs.Config{})
	if err != nil {
		return err
	}
	defer srv.Stop()

	lecturer, err := srv.Client("lecturer")
	if err != nil {
		return err
	}
	defer lecturer.Close()
	session, err := lecturer.CreateSession("distributed-systems-101")
	if err != nil {
		return err
	}
	if _, err := lecturer.Join(session.ID, "lecture-hall"); err != nil {
		return err
	}
	fmt.Printf("lecture session %s at %s\n", session.ID, srv.RTSP.URL(session.ID))

	// The archiver records everything on the audio channel.
	recorder, err := srv.Client("recorder")
	if err != nil {
		return err
	}
	defer recorder.Close()
	audioSub, err := recorder.SubscribeMedia(session, xgsp.MediaAudio, 1024)
	if err != nil {
		return err
	}
	var archive bytes.Buffer
	var arch streaming.Archiver
	recDone := make(chan struct{})
	recCount := make(chan int, 1)
	go func() {
		n, err := arch.Record(&archive, audioSub, recDone)
		if err != nil {
			log.Printf("archiver: %v", err)
		}
		recCount <- n
	}()

	// Two students tune in with RTSP players.
	players := make([]*streaming.Player, 0, 2)
	tracks := make([]*streaming.PlayerTrack, 0, 2)
	for i := range 2 {
		p, err := streaming.DialPlayer(srv.RTSP.URL(session.ID))
		if err != nil {
			return err
		}
		defer p.Close()
		desc, err := p.Describe()
		if err != nil {
			return err
		}
		track, err := p.Setup("audio", desc["audio"])
		if err != nil {
			return err
		}
		if err := p.Play(); err != nil {
			return err
		}
		players = append(players, p)
		tracks = append(tracks, track)
		fmt.Printf("student %d playing via RTSP\n", i+1)
	}

	// A student asks a question in the chat room; the lecturer sees it.
	student, err := srv.Client("student-zhang")
	if err != nil {
		return err
	}
	defer student.Close()
	lecturerRoom, err := lecturer.Chat.JoinRoom(session.ID)
	if err != nil {
		return err
	}
	if err := student.Chat.Send(session.ID, "could you repeat the CAP theorem part?"); err != nil {
		return err
	}
	select {
	case e := <-lecturerRoom.C():
		q, err := im.ParseChat(e)
		if err != nil {
			return err
		}
		fmt.Printf("question from %s: %s\n", q.From, q.Body)
	case <-time.After(5 * time.Second):
		return fmt.Errorf("question never arrived")
	}

	// The lecturer speaks for two seconds.
	sender, err := lecturer.MediaSender(session, xgsp.MediaAudio)
	if err != nil {
		return err
	}
	if _, err := sender.SendAudio(media.NewAudioSource(media.AudioConfig{}), 100, nil); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond) // drain tails

	for i, track := range tracks {
		fmt.Printf("student %d received %d packets (payload type %d, re-encoded by producer)\n",
			i+1, track.Received(), track.LastPayloadType())
	}
	for _, p := range players {
		if err := p.Teardown(); err != nil {
			return err
		}
	}
	close(recDone)
	recorded := <-recCount
	fmt.Printf("archived %d packets (%d bytes)\n", recorded, archive.Len())

	// Replay the archive into a fresh session — a student who missed the
	// lecture watches it later.
	replaySession, err := lecturer.CreateSession("distributed-systems-101-replay")
	if err != nil {
		return err
	}
	var replayTopic string
	for _, m := range replaySession.Media {
		if m.Type == xgsp.MediaAudio {
			replayTopic = m.Topic
		}
	}
	lateSub, err := student.SubscribeMedia(replaySession, xgsp.MediaAudio, 1024)
	if err != nil {
		return err
	}
	replayed, err := arch.Replay(&archive, recorder.BC, false, func(string) string { return replayTopic })
	if err != nil {
		return err
	}
	got := 0
	deadline := time.After(5 * time.Second)
drain:
	for got < replayed {
		select {
		case <-lateSub.C():
			got++
		case <-deadline:
			break drain
		}
	}
	fmt.Printf("replayed %d packets; late student received %d\n", replayed, got)
	fmt.Println("distance lecture complete")
	return nil
}
