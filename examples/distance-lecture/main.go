// Distance lecture: the streaming scenario the paper motivates — a
// lecturer publishes audio into a session, remote students watch through
// Real/Windows-Media-style RTSP players (no conferencing client needed),
// ask questions over the session chat room, and the whole lecture is
// archived and replayed.
//
// Run with:
//
//	go run ./examples/distance-lecture
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

func main() {
	if err := run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context) error {
	srv, err := globalmmcs.Start(ctx)
	if err != nil {
		return err
	}
	defer srv.Stop()
	readyCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.WaitReady(readyCtx); err != nil {
		return err
	}

	lecturer, err := srv.Client(ctx, "lecturer")
	if err != nil {
		return err
	}
	defer lecturer.Close()
	session, err := lecturer.CreateSession(ctx, "distributed-systems-101")
	if err != nil {
		return err
	}
	if err := session.Join(ctx, "lecture-hall"); err != nil {
		return err
	}
	fmt.Printf("lecture session %s at %s\n", session.ID(), srv.StreamURL(session.ID()))

	// The archiver records everything on the audio channel.
	recorder, err := srv.Client(ctx, "recorder")
	if err != nil {
		return err
	}
	defer recorder.Close()
	recSession, err := recorder.Session(ctx, session.ID())
	if err != nil {
		return err
	}
	audioSub, err := recSession.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithBuffer(1024))
	if err != nil {
		return err
	}
	var archive bytes.Buffer
	var arch globalmmcs.Archive
	recCtx, stopRecording := context.WithCancel(ctx)
	defer stopRecording()
	recCount := make(chan int, 1)
	go func() {
		n, err := arch.Record(recCtx, &archive, audioSub)
		if err != nil {
			log.Printf("archiver: %v", err)
		}
		recCount <- n
	}()

	// Two students tune in with RTSP players.
	players := make([]*globalmmcs.Player, 0, 2)
	tracks := make([]*globalmmcs.PlayerTrack, 0, 2)
	for i := range 2 {
		p, err := globalmmcs.DialPlayer(srv.StreamURL(session.ID()))
		if err != nil {
			return err
		}
		defer p.Close()
		desc, err := p.Describe()
		if err != nil {
			return err
		}
		track, err := p.Setup("audio", desc["audio"])
		if err != nil {
			return err
		}
		if err := p.Play(); err != nil {
			return err
		}
		players = append(players, p)
		tracks = append(tracks, track)
		fmt.Printf("student %d playing via RTSP\n", i+1)
	}

	// A student asks a question in the chat room; the lecturer sees it.
	student, err := srv.Client(ctx, "student-zhang")
	if err != nil {
		return err
	}
	defer student.Close()
	studentSession, err := student.Session(ctx, session.ID())
	if err != nil {
		return err
	}
	lecturerRoom, err := session.Chat(ctx)
	if err != nil {
		return err
	}
	defer lecturerRoom.Close()
	if err := studentSession.Send(ctx, "could you repeat the CAP theorem part?"); err != nil {
		return err
	}
	qCtx, cancelQ := context.WithTimeout(ctx, 5*time.Second)
	q, err := lecturerRoom.Recv(qCtx)
	cancelQ()
	if err != nil {
		return fmt.Errorf("question never arrived: %w", err)
	}
	fmt.Printf("question from %s: %s\n", q.From, q.Body)

	// The lecturer speaks for two seconds.
	sender, err := session.Sender(globalmmcs.Audio)
	if err != nil {
		return err
	}
	if _, err := sender.SendAudio(ctx, globalmmcs.NewAudioSource(globalmmcs.AudioConfig{}), 100); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond) // drain tails

	for i, track := range tracks {
		fmt.Printf("student %d received %d packets (payload type %d, re-encoded by producer)\n",
			i+1, track.Received(), track.LastPayloadType())
	}
	for _, p := range players {
		if err := p.Teardown(); err != nil {
			return err
		}
	}
	stopRecording()
	recorded := <-recCount
	fmt.Printf("archived %d packets (%d bytes)\n", recorded, archive.Len())

	// Replay the archive into a fresh session — a student who missed the
	// lecture watches it later.
	replaySession, err := lecturer.CreateSession(ctx, "distributed-systems-101-replay")
	if err != nil {
		return err
	}
	lateSession, err := student.Session(ctx, replaySession.ID())
	if err != nil {
		return err
	}
	lateSub, err := lateSession.Subscribe(ctx, globalmmcs.Audio, globalmmcs.WithBuffer(1024))
	if err != nil {
		return err
	}
	replayed, err := arch.Replay(ctx, &archive, replaySession, globalmmcs.Audio, false)
	if err != nil {
		return err
	}
	got := 0
	drainCtx, cancelDrain := context.WithTimeout(ctx, 5*time.Second)
	defer cancelDrain()
	for got < replayed {
		if _, err := lateSub.Recv(drainCtx); err != nil {
			break
		}
		got++
	}
	fmt.Printf("replayed %d packets; late student received %d\n", replayed, got)
	fmt.Println("distance lecture complete")
	return nil
}
