// Package globalmmcs is the public API of the Global Multimedia
// Collaboration System (Global-MMCS) — a from-scratch Go reproduction of
// the system described in "Global Multimedia Collaboration System" (Fox,
// Wu, Uyar, Bulut, Pallickara; Community Grids Lab).
//
// A Server assembles the full middleware stack: the
// NaradaBrokering-substitute publish/subscribe broker, the XGSP session
// server and web-services (WSDL-CI) frontend, the naming & directory
// service, SIP and H.323 gateways with RTP proxies, the RTSP streaming
// service, instant messaging and presence, and bridges to Admire and
// Access Grid communities:
//
//	srv, err := globalmmcs.Start(globalmmcs.Config{})
//	if err != nil { ... }
//	defer srv.Stop()
//
//	alice, err := srv.Client("alice")
//	if err != nil { ... }
//	defer alice.Close()
//	session, err := alice.CreateSession("standup")
//
// See the examples/ directory for complete programs and DESIGN.md for
// the architecture.
package globalmmcs

import (
	"github.com/globalmmcs/globalmmcs/internal/core"
)

// Version is the release version of this reproduction.
const Version = "1.0.0"

// Config parameterises a Global-MMCS node. The zero value starts every
// service on loopback with ephemeral ports.
type Config = core.Config

// Server is a running Global-MMCS node.
type Server = core.Server

// Client is a user's collaboration endpoint (session control, chat,
// presence, media).
type Client = core.Client

// Start assembles and starts a Global-MMCS node.
func Start(cfg Config) (*Server, error) {
	return core.Start(cfg)
}
