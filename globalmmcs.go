// Package globalmmcs is the public SDK of the Global Multimedia
// Collaboration System (Global-MMCS) — a from-scratch Go reproduction of
// the system described in "Global Multimedia Collaboration System" (Fox,
// Wu, Uyar, Bulut, Pallickara; Community Grids Lab).
//
// A Server assembles the full middleware stack: the
// NaradaBrokering-substitute publish/subscribe broker, the XGSP session
// server and web-services (WSDL-CI) frontend, the naming & directory
// service, SIP and H.323 gateways with RTP proxies, the RTSP streaming
// service, instant messaging and presence, and bridges to Admire and
// Access Grid communities.
//
// Every blocking operation takes a context.Context as its first
// parameter and honors cancellation; configuration is functional options
// (zero options = a fully working loopback node); failures wrap the
// sentinel errors in errors.go so they classify with errors.Is:
//
//	srv, err := globalmmcs.Start(ctx)
//	if err != nil { ... }
//	defer srv.Stop()
//
//	alice, err := srv.Client(ctx, "alice")
//	if err != nil { ... }
//	defer alice.Close()
//	session, err := alice.CreateSession(ctx, "standup")
//	if errors.Is(err, globalmmcs.ErrTimeout) { ... }
//
// Every subscription — chat rooms, presence watches, media channels,
// raw session events — is a Stream[T]: one typed handle consumed with
// Recv, All or Chan, closed with Close, and tuned per subscription with
// QoS options (WithBuffer, WithDropPolicy, WithConflation,
// WithLagNotify). The send side mirrors it with Session.Publisher and
// per-handle options (WithReliable, WithTTL, WithPublishBatching):
//
//	room, err := session.Chat(ctx, globalmmcs.WithBuffer(128))
//	if err != nil { ... }
//	defer room.Close()
//	for msg, err := range room.All(ctx) {
//	    if err != nil { ... }
//	    fmt.Println(msg.From, msg.Body)
//	}
//
// See the examples/ directory for complete programs and DESIGN.md for
// the architecture, including the §5 substitutions this reproduction
// makes for the paper's original building blocks.
package globalmmcs

import (
	"context"

	"github.com/globalmmcs/globalmmcs/internal/core"
)

// Version is the release version of this reproduction.
const Version = "3.0.0"

// Server is a running Global-MMCS node.
type Server struct {
	core *core.Server
}

// Start assembles and starts a Global-MMCS node. ctx bounds the startup
// handshakes; cancelling it aborts startup and tears down whatever was
// already running. With no options every service starts on loopback
// with ephemeral ports.
func Start(ctx context.Context, opts ...Option) (*Server, error) {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	cs, err := core.Start(ctx, cfg)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Server{core: cs}, nil
}

// Stop shuts every subsystem down in dependency order. It is idempotent.
func (s *Server) Stop() { s.core.Stop() }

// Drain gracefully winds the node's broker down ahead of Stop: new
// connections are refused, attached clients receive a reliable GOAWAY,
// and the call waits until in-flight reliable traffic is acknowledged
// or ctx expires. Wired to SIGTERM in cmd/gmmcs-server via
// -drain-timeout.
func (s *Server) Drain(ctx context.Context) error { return wrapErr(s.core.Broker.Drain(ctx)) }

// WaitReady blocks until the node answers on its web listener, bounded
// by ctx — the replacement for the startup sleeps examples used to need.
func (s *Server) WaitReady(ctx context.Context) error {
	return wrapErr(s.core.WaitReady(ctx))
}

// Client attaches an in-process collaboration client for a user.
func (s *Server) Client(ctx context.Context, userID string) (*Client, error) {
	cc, err := s.core.Client(ctx, userID)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Client{c: cc}, nil
}

// WebAddr returns the XGSP web server's HTTP base URL. The WSDL-CI SOAP
// endpoint is WebAddr()+"/ws".
func (s *Server) WebAddr() string { return s.core.WebAddr() }

// SIPAddr returns the SIP server's UDP address, or "" when SIP is
// disabled.
func (s *Server) SIPAddr() string {
	if s.core.SIP == nil {
		return ""
	}
	return s.core.SIP.Addr()
}

// SIPDomain returns the SIP domain, or "" when SIP is disabled.
func (s *Server) SIPDomain() string {
	if s.core.SIP == nil {
		return ""
	}
	return s.core.SIP.Domain()
}

// GatekeeperAddr returns the H.323 RAS address, or "" when H.323 is
// disabled.
func (s *Server) GatekeeperAddr() string {
	if s.core.Gatekeeper == nil {
		return ""
	}
	return s.core.Gatekeeper.Addr()
}

// H323GatewayAddr returns the H.323 call-signalling address, or "" when
// H.323 is disabled.
func (s *Server) H323GatewayAddr() string {
	if s.core.H323Gateway == nil {
		return ""
	}
	return s.core.H323Gateway.Addr()
}

// RTSPAddr returns the streaming server's address, or "" when RTSP is
// disabled.
func (s *Server) RTSPAddr() string {
	if s.core.RTSP == nil {
		return ""
	}
	return s.core.RTSP.Addr()
}

// StreamURL returns the rtsp:// URL a media player uses to watch a
// session, or "" when RTSP is disabled.
func (s *Server) StreamURL(sessionID string) string {
	if s.core.RTSP == nil {
		return ""
	}
	return s.core.RTSP.URL(sessionID)
}

// SessionInfo looks a session up server-side and reports whether it
// exists.
func (s *Server) SessionInfo(sessionID string) (SessionDetails, bool) {
	info := s.core.XGSP.Lookup(sessionID)
	if info == nil {
		return SessionDetails{}, false
	}
	return detailsFromInfo(info), true
}

// ChatHistory returns up to limit most recent messages of a session's
// room, oldest first. It returns nil when IM is disabled.
func (s *Server) ChatHistory(sessionID string, limit int) []ChatMessage {
	if s.core.IM == nil {
		return nil
	}
	history := s.core.IM.History(sessionID, limit)
	out := make([]ChatMessage, len(history))
	for i, m := range history {
		out[i] = chatFromInternal(&m)
	}
	return out
}

// LinkAdmire bridges a session to an Admire conference served at the
// given WSDL-CI endpoint, registering the community on the way.
func (s *Server) LinkAdmire(ctx context.Context, sessionID, confID, endpoint string) error {
	_, err := s.core.LinkAdmire(ctx, sessionID, confID, endpoint)
	return wrapErr(err)
}

// LinkAccessGrid bridges a session to a venue on a venue server.
func (s *Server) LinkAccessGrid(ctx context.Context, sessionID string, venues *VenueServer, venue string) error {
	_, err := s.core.LinkAccessGrid(ctx, sessionID, venues.vs, venue)
	return wrapErr(err)
}
