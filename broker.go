package globalmmcs

import (
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
)

// BrokerMode selects how a standalone broker network routes events.
type BrokerMode int

// Routing modes.
const (
	// BrokerClientServer routes along subscription advertisements (the
	// paper's "client-server mode like JMS").
	BrokerClientServer BrokerMode = iota + 1
	// BrokerPeerToPeer floods events to all peers with TTL and duplicate
	// suppression (the paper's "JXTA-like peer-to-peer mode").
	BrokerPeerToPeer
)

// String implements fmt.Stringer.
func (m BrokerMode) String() string { return broker.Mode(m).String() }

// Broker is a standalone node of the messaging middleware, for running
// a distributed broker network outside a full Server (cmd/gmmcs-broker).
type Broker struct {
	b       *broker.Broker
	metrics *Metrics
}

// BrokerConfig tunes a standalone broker's data path. The zero value
// keeps every default.
type BrokerConfig struct {
	// QueueDepth bounds each session's best-effort lane (default 512).
	QueueDepth int
	// RouteShards is the routing-lock shard count (default 16, rounded
	// up to a power of two).
	RouteShards int
	// MaxBatchBytes bounds per-session write batches (default 256 KiB).
	MaxBatchBytes int
	// FlushInterval is the batch linger once a session queue idles
	// (default 0: flush immediately).
	FlushInterval time.Duration
	// IngestBurst bounds the per-sweep ingest burst (default 256;
	// 1 = event-at-a-time ablation).
	IngestBurst int
}

// NewBroker creates a standalone broker. mode 0 defaults to
// BrokerClientServer.
func NewBroker(id string, mode BrokerMode) *Broker {
	return NewBrokerWithConfig(id, mode, BrokerConfig{})
}

// NewBrokerWithConfig creates a standalone broker with data-path tuning.
func NewBrokerWithConfig(id string, mode BrokerMode, cfg BrokerConfig) *Broker {
	m := NewMetrics()
	return &Broker{
		b: broker.New(broker.Config{
			ID:            id,
			Mode:          broker.Mode(mode),
			QueueDepth:    cfg.QueueDepth,
			RouteShards:   cfg.RouteShards,
			MaxBatchBytes: cfg.MaxBatchBytes,
			FlushInterval: cfg.FlushInterval,
			IngestBurst:   cfg.IngestBurst,
			Metrics:       m.reg,
		}),
		metrics: m,
	}
}

// Listen accepts clients and peer brokers on a transport URL (tcp:// or
// udp://) and returns the bound address.
func (b *Broker) Listen(url string) (string, error) {
	l, err := b.b.Listen(url)
	if err != nil {
		return "", err
	}
	return l.Addr(), nil
}

// ConnectPeer links this broker to a peer broker's listen URL.
func (b *Broker) ConnectPeer(url string) error { return b.b.ConnectPeer(url) }

// SessionCount returns the number of attached clients and peers.
func (b *Broker) SessionCount() int { return b.b.SessionCount() }

// PeerCount returns the number of linked peer brokers.
func (b *Broker) PeerCount() int { return b.b.PeerCount() }

// Mode returns the routing mode.
func (b *Broker) Mode() BrokerMode { return BrokerMode(b.b.Mode()) }

// MetricsReport renders the broker's counters as text.
func (b *Broker) MetricsReport() string { return b.metrics.Report() }

// Stop shuts the broker down.
func (b *Broker) Stop() { b.b.Stop() }
