package globalmmcs

import (
	"context"
	"sync"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
)

// BrokerMode selects how a standalone broker network routes events.
type BrokerMode int

// Routing modes.
const (
	// BrokerClientServer routes along subscription advertisements (the
	// paper's "client-server mode like JMS").
	BrokerClientServer BrokerMode = iota + 1
	// BrokerPeerToPeer floods events to all peers with TTL and duplicate
	// suppression (the paper's "JXTA-like peer-to-peer mode").
	BrokerPeerToPeer
)

// String implements fmt.Stringer.
func (m BrokerMode) String() string { return broker.Mode(m).String() }

// Broker is a standalone node of the messaging middleware, for running
// a distributed broker network outside a full Server (cmd/gmmcs-broker).
type Broker struct {
	b       *broker.Broker
	metrics *Metrics

	meshMu sync.Mutex
	mesh   *broker.Mesh
}

// BrokerConfig tunes a standalone broker's data path. The zero value
// keeps every default.
type BrokerConfig struct {
	// QueueDepth bounds each session's best-effort lane (default 512).
	QueueDepth int
	// RouteShards is the routing-lock shard count (default 16, rounded
	// up to a power of two).
	RouteShards int
	// MaxBatchBytes bounds per-session write batches (default 256 KiB).
	MaxBatchBytes int
	// FlushInterval is the batch linger once a session queue idles
	// (default 0: flush immediately).
	FlushInterval time.Duration
	// IngestBurst bounds the per-sweep ingest burst (default 256;
	// 1 = event-at-a-time ablation).
	IngestBurst int
	// WriterPoolSize sets how many shared writer pools drain session
	// send queues (default GOMAXPROCS-derived — O(cores) writers instead
	// of one goroutine per session; negative restores the legacy
	// writer-goroutine-per-session plane).
	WriterPoolSize int
	// MeshID scopes this broker's peer links to one federation mesh:
	// brokers link only when their mesh IDs match (empty matches
	// anything).
	MeshID string
	// MeshFlood disables routed mesh forwarding: events flood every
	// advertising peer link and rely on TTL + duplicate suppression to
	// kill cyclic copies (the pre-routing behaviour, kept as an
	// ablation/escape hatch).
	MeshFlood bool
	// PeerCreditWindow bounds the best-effort events in flight to one
	// peer link before the sender sheds instead of staging (default
	// QueueDepth/2, min 64; negative disables flow control).
	PeerCreditWindow int
	// RecordPatterns are topic patterns this broker records to durable
	// topic logs for replay (see internal/topiclog). Empty disables
	// recording.
	RecordPatterns []string
	// RecordDir is the root directory for topic logs (empty = a
	// per-broker default under the OS temp dir).
	RecordDir string
	// RecordSegmentBytes caps one log segment before roll (0 = 4 MiB).
	RecordSegmentBytes int64
	// RecordMaxSegments / RecordMaxBytes bound each log's retention;
	// oldest segments are reaped past either, except segments an active
	// replay cursor still reads (0 = unbounded).
	RecordMaxSegments int
	RecordMaxBytes    int64
	// SessionLinger retains a client session whose conn died — its
	// subscriptions, reliable window and ack floor — for this long,
	// awaiting a resume from a reconnecting client (see DialBroker with
	// WithReconnect). 0 disables parking: a dead conn tears the session
	// down immediately.
	SessionLinger time.Duration
}

// NewBroker creates a standalone broker. mode 0 defaults to
// BrokerClientServer.
func NewBroker(id string, mode BrokerMode) *Broker {
	return NewBrokerWithConfig(id, mode, BrokerConfig{})
}

// NewBrokerWithConfig creates a standalone broker with data-path tuning.
func NewBrokerWithConfig(id string, mode BrokerMode, cfg BrokerConfig) *Broker {
	m := NewMetrics()
	return &Broker{
		b: broker.New(broker.Config{
			ID:                 id,
			Mode:               broker.Mode(mode),
			QueueDepth:         cfg.QueueDepth,
			RouteShards:        cfg.RouteShards,
			MaxBatchBytes:      cfg.MaxBatchBytes,
			FlushInterval:      cfg.FlushInterval,
			IngestBurst:        cfg.IngestBurst,
			WriterPoolSize:     cfg.WriterPoolSize,
			MeshID:             cfg.MeshID,
			MeshFlood:          cfg.MeshFlood,
			PeerCreditWindow:   cfg.PeerCreditWindow,
			RecordPatterns:     cfg.RecordPatterns,
			RecordDir:          cfg.RecordDir,
			RecordSegmentBytes: cfg.RecordSegmentBytes,
			RecordMaxSegments:  cfg.RecordMaxSegments,
			RecordMaxBytes:     cfg.RecordMaxBytes,
			SessionLinger:      cfg.SessionLinger,
			Metrics:            m.reg,
		}),
		metrics: m,
	}
}

// Listen accepts clients and peer brokers on a transport URL (tcp:// or
// udp://) and returns the bound address.
func (b *Broker) Listen(url string) (string, error) {
	l, err := b.b.Listen(url)
	if err != nil {
		return "", err
	}
	return l.Addr(), nil
}

// ConnectPeer links this broker to a peer broker's listen URL once,
// without supervision. Use SetPeers for supervised, self-healing links.
func (b *Broker) ConnectPeer(url string) error { return b.b.ConnectPeer(url) }

// SetPeers declares the set of peer broker URLs this node keeps
// supervised mesh links to: each is dialed (and redialed with backoff
// after drops or partitions, detected via heartbeats), and links to
// URLs no longer listed are torn down. Calling it again reconciles
// against the new set; an empty call drops all supervised links.
func (b *Broker) SetPeers(urls ...string) {
	b.meshMu.Lock()
	defer b.meshMu.Unlock()
	if b.mesh == nil {
		b.mesh = broker.NewMesh(b.b, broker.MeshConfig{Peers: urls})
		return
	}
	b.mesh.SetPeers(urls)
}

// PeerLink is one supervised mesh link's externally visible state.
type PeerLink struct {
	// URL is the configured peer address.
	URL string
	// RemoteID is the peer broker's identity once learned ("" before the
	// first successful handshake).
	RemoteID string
	// State is "dialing", "up", "backoff", "standby" (yielded to the
	// link the peer dialed) or "stopped".
	State string
	// Redials counts dial attempts after the first.
	Redials uint64
}

// PeerLinks reports the status of every link declared via SetPeers.
func (b *Broker) PeerLinks() []PeerLink {
	b.meshMu.Lock()
	mesh := b.mesh
	b.meshMu.Unlock()
	if mesh == nil {
		return nil
	}
	links := mesh.Links()
	out := make([]PeerLink, 0, len(links))
	for _, l := range links {
		out = append(out, PeerLink{URL: l.URL, RemoteID: l.RemoteID, State: l.State, Redials: l.Redials})
	}
	return out
}

// SessionCount returns the number of attached clients and peers.
func (b *Broker) SessionCount() int { return b.b.SessionCount() }

// PeerCount returns the number of linked peer brokers.
func (b *Broker) PeerCount() int { return b.b.PeerCount() }

// Mode returns the routing mode.
func (b *Broker) Mode() BrokerMode { return BrokerMode(b.b.Mode()) }

// MetricsReport renders the broker's counters as text.
func (b *Broker) MetricsReport() string { return b.metrics.Report() }

// Drain gracefully winds the broker down: new connections are refused,
// every client receives a reliable GOAWAY notice telling
// reconnect-enabled clients to redial another broker, and the call
// waits until each remaining client has acknowledged all reliable
// traffic in flight — or ctx expires. Call Stop afterwards to release
// the broker. Wired to SIGTERM in cmd/gmmcs-broker via -drain-timeout.
func (b *Broker) Drain(ctx context.Context) error { return b.b.Drain(ctx) }

// Stop shuts the broker down, tearing down supervised mesh links first.
func (b *Broker) Stop() {
	b.meshMu.Lock()
	mesh := b.mesh
	b.mesh = nil
	b.meshMu.Unlock()
	if mesh != nil {
		mesh.Stop()
	}
	b.b.Stop()
}
