package globalmmcs

import (
	"context"
	"errors"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
)

// DropPolicy selects what a Stream does with a new event when its
// delivery buffer is full because the consumer lags.
type DropPolicy int

const (
	// DropOldest displaces the oldest buffered event to admit the new
	// one — the right policy for live media, where the freshest packet
	// is worth more than a stale one. This is the default.
	DropOldest DropPolicy = iota
	// DropNewest discards the incoming event and keeps what is already
	// buffered — the right policy when the earliest events matter most
	// (e.g. replay heads).
	DropNewest
	// Block stops draining the subscription until the consumer catches
	// up. Backpressure propagates into the broker connection: reliable
	// traffic stalls the sender, best-effort traffic is shed upstream in
	// the broker's bounded queues. Nothing is dropped by the Stream
	// itself.
	Block
)

// StreamOption configures a subscription's delivery QoS at creation
// (Session.Chat, Session.Subscribe, Session.Events,
// Client.WatchPresence).
type StreamOption func(*streamConfig)

type streamConfig struct {
	buffer    int
	policy    DropPolicy
	policySet bool
	conflate  bool
	keyFn     any // func(T) any when set via WithConflationKey[T]
	lagNotify func(dropped uint64)

	replay     bool
	replayFrom uint64
}

// WithBuffer sets the stream's delivery buffer depth (and sizes the
// underlying broker subscription to match). n <= 0 keeps the stream's
// default (64 for chat and presence, 256 for media and raw events).
func WithBuffer(n int) StreamOption {
	return func(c *streamConfig) { c.buffer = n }
}

// WithDropPolicy selects the stream's full-buffer policy. The default
// is DropOldest (Block for replay streams).
func WithDropPolicy(p DropPolicy) StreamOption {
	return func(c *streamConfig) { c.policy = p; c.policySet = true }
}

// WithReplayFromEarliest turns the subscription into a replay
// subscription: the broker first streams the topic's recorded history
// from the earliest retained event, then hands off to live delivery
// exactly once — nothing is lost or duplicated across the switch. The
// node must record the subscribed pattern (WithRecording with exactly
// this pattern); CaughtUp on the stream signals the handoff. Replay
// streams default to the Block policy so history is never dropped
// client-side; an explicit WithDropPolicy overrides.
func WithReplayFromEarliest() StreamOption {
	return func(c *streamConfig) { c.replay = true; c.replayFrom = 0 }
}

// WithReplayFrom is WithReplayFromEarliest starting at a specific
// recorded sequence number instead of the earliest retained one (a
// sequence already reaped by retention clamps to the earliest).
func WithReplayFrom(seq uint64) StreamOption {
	return func(c *streamConfig) { c.replay = true; c.replayFrom = seq }
}

// WithConflation merges queued events that supersede each other while
// the consumer lags: for media streams, a newer packet from an SSRC
// replaces the queued one from the same SSRC, so a slow consumer skips
// ahead instead of replaying a backlog. Each merge counts as a drop.
// Conflation is itself a full-buffer policy and takes precedence over
// WithDropPolicy: merging is inherently lossy, so Block's
// nothing-dropped guarantee does not compose with it, and events
// without a conflation key (non-RTP traffic on a media topic) fall
// back to drop-oldest. Streams whose events carry no conflation key at
// all (chat, presence, raw events) ignore the option unless a key is
// supplied with WithConflationKey.
func WithConflation() StreamOption {
	return func(c *streamConfig) { c.conflate = true }
}

// WithConflationKey enables conflation keyed by fn, overriding the
// stream's built-in key (SSRC for media streams; none elsewhere): while
// the consumer lags, a newer event replaces the queued event with the
// same key. This is what generalizes conflation beyond media — e.g. a
// presence watch keyed by user delivers only each user's latest state
// to a lagging consumer:
//
//	watch, _ := client.WatchPresence(ctx, community,
//	    globalmmcs.WithConflationKey(func(p globalmmcs.Presence) any { return p.User }))
//
// The returned key must be comparable; returning nil exempts that event
// from conflation (it is delivered drop-oldest). The type parameter
// must match the stream's event type — a key function of any other type
// is ignored.
func WithConflationKey[T any](fn func(T) any) StreamOption {
	return func(c *streamConfig) {
		c.conflate = true
		c.keyFn = fn
	}
}

// WithLagNotify registers a callback fired whenever the stream discards
// or conflates an event, with the cumulative number dropped so far. It
// runs on the delivery goroutine and must not block; hand off to your
// own goroutine for anything slow.
func WithLagNotify(fn func(dropped uint64)) StreamOption {
	return func(c *streamConfig) { c.lagNotify = fn }
}

// Stream is the uniform subscription handle of the SDK: every
// subscribe-shaped API (chat rooms, presence watches, media
// subscriptions, raw session events) returns a Stream of its typed
// events. Consume with Recv, range over All, or select on Chan; Close
// releases the subscription and ends delivery. Delivery QoS — buffer
// depth, full-buffer policy, conflation, lag notification — is set per
// stream with StreamOptions at creation.
//
// Events discarded because the consumer lags are counted (Drops), fire
// the WithLagNotify callback, and surface as a
// "stream.<user>.<name>.queue_drops" gauge in the server's metrics
// registry when the node runs WithMetrics.
type Stream[T any] struct {
	sub       *broker.Subscription
	ch        chan T
	policy    DropPolicy
	pending   conflatePending[T] // non-nil when the stream conflates
	lagNotify func(uint64)

	gauge      *metrics.Gauge
	unregister func()

	drops    atomic.Uint64
	closing  chan struct{}
	once     sync.Once
	closeErr error
	wg       sync.WaitGroup
}

// conflatePending is the keyed pending set behind a conflating stream:
// while the consumer lags, a newer event replaces the queued event with
// the same key. Two instantiations exist — K = uint64 for the built-in
// media SSRC key, so the default conflating hot path stores keys
// unboxed and allocation-free, and K = any for custom WithConflationKey
// functions.
type conflatePending[T any] interface {
	// admit inserts v, merging over a queued value with the same key. It
	// reports whether v carried a key (unkeyed events bypass conflation)
	// and whether it superseded a queued value (counted as a drop).
	admit(v T) (keyed, merged bool)
	empty() bool
	head() T
	pop()
}

type pendingSet[T any, K comparable] struct {
	keyOf func(T) (K, bool)
	order []K
	vals  map[K]T
}

func newPendingSet[T any, K comparable](keyOf func(T) (K, bool)) *pendingSet[T, K] {
	return &pendingSet[T, K]{keyOf: keyOf, vals: make(map[K]T)}
}

func (p *pendingSet[T, K]) admit(v T) (keyed, merged bool) {
	k, ok := p.keyOf(v)
	if !ok {
		return false, false
	}
	if _, exists := p.vals[k]; exists {
		p.vals[k] = v
		return true, true
	}
	p.vals[k] = v
	p.order = append(p.order, k)
	return true, false
}

func (p *pendingSet[T, K]) empty() bool { return len(p.order) == 0 }
func (p *pendingSet[T, K]) head() T     { return p.vals[p.order[0]] }
func (p *pendingSet[T, K]) pop() {
	delete(p.vals, p.order[0])
	p.order = p.order[1:]
}

// newStream wires a typed pump over a broker subscription. decode maps
// wire events to T (false skips malformed events); builtinKey, when
// non-nil, supplies the stream's built-in conflation key (the media
// SSRC — a uint64, kept unboxed on the conflating fast path), used when
// WithConflation is set without a custom WithConflationKey of the
// matching type. reg/name register the per-stream drop gauge when the
// node has a registry.
func newStream[T any](sub *broker.Subscription, reg *metrics.Registry, name string, defaultBuffer int, decode func(*event.Event) (T, bool), builtinKey func(T) (uint64, bool), opts []StreamOption) *Stream[T] {
	cfg := resolveStreamConfig(defaultBuffer, opts)
	if cfg.replay && !cfg.policySet {
		// History must survive a lagging consumer: backpressure the
		// broker's replay pump instead of dropping.
		cfg.policy = Block
	}
	s := &Stream[T]{
		sub:       sub,
		ch:        make(chan T, cfg.buffer),
		policy:    cfg.policy,
		lagNotify: cfg.lagNotify,
		closing:   make(chan struct{}),
	}
	if cfg.conflate {
		if fn, ok := cfg.keyFn.(func(T) any); ok {
			s.pending = newPendingSet[T, any](func(v T) (any, bool) {
				k := fn(v)
				return k, k != nil
			})
		} else if builtinKey != nil {
			s.pending = newPendingSet[T, uint64](builtinKey)
		}
	}
	if reg != nil && name != "" {
		gname := "stream." + name + ".queue_drops"
		s.gauge = reg.Gauge(gname)
		s.unregister = acquireGauge(reg, gname)
	}
	s.wg.Add(1)
	go s.pump(decode)
	return s
}

// gaugeRefs refcounts per-stream gauges across streams that resolve to
// the same name (the same user opening the same subscription twice), so
// closing one stream does not unregister the gauge out from under the
// other. Keyed per registry.
var (
	gaugeRefsMu sync.Mutex
	gaugeRefs   = make(map[*metrics.Registry]map[string]int)
)

// acquireGauge takes a reference on the named gauge and returns the
// matching release func, which drops the gauge from the registry once
// the last reference is gone.
func acquireGauge(reg *metrics.Registry, name string) func() {
	gaugeRefsMu.Lock()
	defer gaugeRefsMu.Unlock()
	refs := gaugeRefs[reg]
	if refs == nil {
		refs = make(map[string]int)
		gaugeRefs[reg] = refs
	}
	refs[name]++
	return func() {
		gaugeRefsMu.Lock()
		defer gaugeRefsMu.Unlock()
		refs := gaugeRefs[reg]
		if refs == nil {
			return
		}
		refs[name]--
		if refs[name] > 0 {
			return
		}
		delete(refs, name)
		if len(refs) == 0 {
			delete(gaugeRefs, reg)
		}
		reg.DropGauge(name)
	}
}

// resolveStreamConfig folds the options over the defaults.
func resolveStreamConfig(defaultBuffer int, opts []StreamOption) streamConfig {
	cfg := streamConfig{buffer: defaultBuffer, policy: DropOldest}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	if cfg.buffer <= 0 {
		cfg.buffer = defaultBuffer
	}
	return cfg
}

// streamBuffer resolves the effective stream buffer depth for the
// given options.
func streamBuffer(defaultBuffer int, opts []StreamOption) int {
	return resolveStreamConfig(defaultBuffer, opts).buffer
}

// brokerDepth sizes the broker-side subscription channel backing a
// stream buffer: it matches the buffer but keeps a floor, so a tiny
// app-side buffer (WithBuffer(1) with conflation, say) doesn't force
// upstream best-effort drops that the stream-level policy was meant to
// manage.
func brokerDepth(buffer int) int {
	const floor = 64
	if buffer < floor {
		return floor
	}
	return buffer
}

// Recv returns the next event, blocking until one is available, the
// stream closes (ErrStreamClosed), or ctx is cancelled (the context's
// error). Buffered events are still delivered after Close.
func (s *Stream[T]) Recv(ctx context.Context) (T, error) {
	var zero T
	select {
	case v, ok := <-s.ch:
		if !ok {
			return zero, ErrStreamClosed
		}
		return v, nil
	default:
	}
	select {
	case v, ok := <-s.ch:
		if !ok {
			return zero, ErrStreamClosed
		}
		return v, nil
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}

// All returns a single-use iterator over the stream's events, for
//
//	for msg, err := range room.All(ctx) { ... }
//
// The iterator ends cleanly when the stream is closed; if ctx is
// cancelled it yields one final (zero, ctx.Err()) pair and stops. Any
// non-nil error ends the iteration.
func (s *Stream[T]) All(ctx context.Context) iter.Seq2[T, error] {
	return func(yield func(T, error) bool) {
		for {
			v, err := s.Recv(ctx)
			if err != nil {
				if !errors.Is(err, ErrStreamClosed) {
					yield(v, err)
				}
				return
			}
			if !yield(v, nil) {
				return
			}
		}
	}
}

// Chan returns the delivery channel, for select-based consumers. It is
// closed when the stream closes; Recv and Chan draw from the same
// buffer.
func (s *Stream[T]) Chan() <-chan T { return s.ch }

// CaughtUp returns a channel that closes once a replay stream
// (WithReplayFrom / WithReplayFromEarliest) has drained recorded
// history and handed off to live delivery. Events may still be
// buffered ahead of the consumer at that instant — the signal means
// the broker-side cursor reached the log's tail. For non-replay
// streams it returns nil (a nil channel never becomes ready).
func (s *Stream[T]) CaughtUp() <-chan struct{} { return s.sub.CaughtUp() }

// Drops reports how many events this stream discarded or conflated
// locally because the consumer lagged. (The broker additionally sheds
// best-effort traffic upstream under overload; see the broker
// queue_drops counters.)
func (s *Stream[T]) Drops() uint64 { return s.drops.Load() }

// Close cancels the subscription and closes the delivery channel.
// Events already buffered remain readable. Idempotent; safe to call
// concurrently with Recv.
func (s *Stream[T]) Close() error {
	s.once.Do(func() {
		close(s.closing)
		s.closeErr = wrapErr(s.sub.Cancel())
		s.wg.Wait()
		if s.unregister != nil {
			s.unregister()
		}
	})
	return s.closeErr
}

func (s *Stream[T]) noteDrops(n uint64) {
	total := s.drops.Add(n)
	if s.gauge != nil {
		s.gauge.Set(int64(total))
	}
	if s.lagNotify != nil {
		s.lagNotify(total)
	}
}

// sendDropOldest delivers v without ever blocking, displacing the
// oldest buffered event when full — the pre-existing pump policy, now
// with every displacement counted and reported.
func (s *Stream[T]) sendDropOldest(v T) {
	for {
		select {
		case s.ch <- v:
			return
		default:
		}
		select {
		case <-s.ch:
			s.noteDrops(1)
		default:
		}
	}
}

// streamDrainBurst bounds how many subscription events a pump drains
// per ring wakeup: one lock acquisition and one wakeup amortized across
// the whole run.
const streamDrainBurst = 256

func (s *Stream[T]) pump(decode func(*event.Event) (T, bool)) {
	defer s.wg.Done()
	defer close(s.ch)
	if s.pending != nil {
		s.pumpConflating(decode)
		return
	}
	// Drain the subscription ring in bursts — decode a run of events per
	// wakeup and apply the drop policy per batch, with drop/lag totals
	// identical to the per-event pump's.
	buf := make([]*event.Event, 0, streamDrainBurst)
	for {
		var ok bool
		buf, ok = s.sub.RecvBatch(buf[:0], streamDrainBurst)
		for _, e := range buf {
			v, decoded := decode(e)
			if !decoded {
				continue
			}
			switch s.policy {
			case Block:
				select {
				case s.ch <- v:
				case <-s.closing:
					return
				}
			case DropNewest:
				select {
				case s.ch <- v:
				default:
					s.noteDrops(1)
				}
			default: // DropOldest
				s.sendDropOldest(v)
			}
		}
		clear(buf) // never pin delivered events in the reused buffer
		if !ok {
			return
		}
	}
}

// pumpConflating drains the subscription ring eagerly into the keyed
// pending set: while the consumer lags, a newer event replaces the
// queued event with the same key instead of queueing behind it. Pending
// events feed the delivery channel in arrival order of their keys.
// Unkeyed events bypass conflation and are delivered drop-oldest.
func (s *Stream[T]) pumpConflating(decode func(*event.Event) (T, bool)) {
	buf := make([]*event.Event, 0, streamDrainBurst)
	admit := func(events []*event.Event) {
		for _, e := range events {
			v, ok := decode(e)
			if !ok {
				continue
			}
			keyed, merged := s.pending.admit(v)
			switch {
			case !keyed:
				s.sendDropOldest(v)
			case merged:
				s.noteDrops(1) // conflated: the queued event was superseded
			}
		}
	}
	// handover delivers everything pending without blocking, for when
	// the input has ended (the consumer may be gone).
	handover := func() {
		for !s.pending.empty() {
			s.sendDropOldest(s.pending.head())
			s.pending.pop()
		}
	}

	for {
		if s.pending.empty() {
			var ok bool
			buf, ok = s.sub.RecvBatch(buf[:0], streamDrainBurst)
			admit(buf)
			clear(buf)
			if !ok {
				handover()
				return
			}
			continue
		}
		// Pending events exist: drain whatever already arrived (one ring
		// lock for the run) and push pending heads while the consumer
		// keeps up, then block multiplexing input against delivery.
		var ok bool
		buf, ok = s.sub.TryRecvBatch(buf[:0], streamDrainBurst)
		got := len(buf)
		admit(buf)
		clear(buf)
		if !ok {
			handover()
			return
		}
		progressed := false
		for !s.pending.empty() {
			select {
			case s.ch <- s.pending.head():
				s.pending.pop()
				progressed = true
				continue
			default:
			}
			break
		}
		if got > 0 || progressed {
			continue
		}
		select {
		case s.ch <- s.pending.head():
			s.pending.pop()
		case <-s.sub.Wake():
			// More input may be buffered; the next TryRecvBatch re-arms
			// the token if it leaves events behind.
		case <-s.closing:
			return
		}
	}
}

// Event is one raw broker event as delivered by Session.Events — the
// escape hatch onto the publish/subscribe substrate that every
// collaboration modality (media, chat, presence, signalling) rides.
type Event struct {
	// Topic is the concrete broker topic the event was published on.
	Topic string
	// Kind names the payload class ("rtp", "chat", "presence",
	// "control", "data", ...).
	Kind string
	// Source identifies the publishing client.
	Source string
	// At is the publish wall-clock instant.
	At time.Time
	// Reliable reports whether the event rode the reliable profile.
	Reliable bool
	// Payload is the raw application data. It may alias the broker's
	// receive buffer: callers retaining events indefinitely should copy
	// it (Clone) so a 256 KiB receive chunk is not pinned by one packet.
	Payload []byte
}

// Clone returns a deep copy of the event whose payload no longer
// aliases any shared receive buffer.
func (e Event) Clone() Event {
	c := e
	c.Payload = append([]byte(nil), e.Payload...)
	return c
}

func rawFromInternal(e *event.Event) (Event, bool) {
	return Event{
		Topic:    e.Topic,
		Kind:     e.Kind.String(),
		Source:   e.Source,
		At:       time.Unix(0, e.Timestamp),
		Reliable: e.Reliable,
		Payload:  e.Payload,
	}, true
}
