package globalmmcs

import (
	"fmt"
	"io"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/bench"
	"github.com/globalmmcs/globalmmcs/internal/broker"
)

// Benchmark quality gates: the §3.2 thresholds under which a client
// counts as receiving "good quality" media.
const (
	QualityMaxDelayMs  = bench.QualityMaxDelayMs
	QualityMaxJitterMs = bench.QualityMaxJitterMs
	QualityMaxLoss     = bench.QualityMaxLoss
)

// BenchSystem selects which media-distribution system a benchmark
// exercises.
type BenchSystem int

// Systems compared by the paper's Figure 3.
const (
	// BenchBroker is the NaradaBrokering-substitute broker.
	BenchBroker BenchSystem = iota + 1
	// BenchReflector is the JMF-style unicast reflector baseline.
	BenchReflector
)

// String implements fmt.Stringer.
func (s BenchSystem) String() string { return bench.System(s).String() }

// BenchSeries is one per-packet measurement series (delay or jitter in
// milliseconds, indexed by packet number).
type BenchSeries struct {
	s interface{ WriteTSV(w io.Writer) error }
}

// WriteTSV dumps the series as packet-number/milliseconds rows.
func (s *BenchSeries) WriteTSV(w io.Writer) error { return s.s.WriteTSV(w) }

// Fig3Options parameterises the Figure 3 experiment. Zero values run
// the paper-scale defaults.
type Fig3Options struct {
	// Receivers is the number of video clients (paper: 400).
	Receivers int
	// Measured is how many receivers record per-packet series (paper: 12).
	Measured int
	// Packets is the number of video packets streamed (paper: 2000).
	Packets int
}

// Fig3Report is the outcome of one Figure 3 run.
type Fig3Report struct {
	System       BenchSystem
	MeanDelayMs  float64
	MeanJitterMs float64
	Received     uint64
	Lost         uint64
	Elapsed      time.Duration
	// Delay and Jitter are the two panels of Figure 3.
	Delay  *BenchSeries
	Jitter *BenchSeries
}

// RunFig3 regenerates the paper's Figure 3 for one system: per-packet
// delay and jitter of a 600 Kbps video stream fanned out to Receivers
// clients.
func RunFig3(system BenchSystem, opt Fig3Options) (*Fig3Report, error) {
	res, err := bench.RunFig3(bench.Fig3Config{
		System:    bench.System(system),
		Receivers: opt.Receivers,
		Measured:  opt.Measured,
		Packets:   opt.Packets,
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Report{
		System:       BenchSystem(res.System),
		MeanDelayMs:  res.MeanDelayMs,
		MeanJitterMs: res.MeanJitterMs,
		Received:     res.Received,
		Lost:         res.Lost,
		Elapsed:      res.Elapsed,
		Delay:        &BenchSeries{s: res.Delay},
		Jitter:       &BenchSeries{s: res.Jitter},
	}, nil
}

// FanoutOptions parameterises the broker fan-out throughput benchmark.
// Zero values run the default: 64 subscribers × 4 publishers over
// loopback TCP in client-server mode.
type FanoutOptions struct {
	// Mode selects the routing mode (default BrokerClientServer).
	Mode BrokerMode
	// Subscribers is the fan-out width (default 64).
	Subscribers int
	// Publishers is the number of concurrent publishers (default 4).
	Publishers int
	// Events is the number of events each publisher sends (default 2000).
	Events int
	// PayloadBytes sizes each event payload (default 1200).
	PayloadBytes int
	// Transport is "tcp" (default) or "mem".
	Transport string
	// PublishBatching routes the publishers through the client-side
	// batching Publisher (WithPublishBatching) so each hands the broker
	// one write system call per batch instead of one per event.
	PublishBatching bool
}

// FanoutReport is the outcome of one fan-out benchmark run. Fields carry
// JSON tags so reports can be committed as machine-readable baselines.
type FanoutReport struct {
	Mode            string  `json:"mode"`
	Transport       string  `json:"transport"`
	Subscribers     int     `json:"subscribers"`
	Publishers      int     `json:"publishers"`
	Events          int     `json:"events_per_publisher"`
	PayloadBytes    int     `json:"payload_bytes"`
	PublishBatching bool    `json:"publish_batching"`
	Expected        uint64  `json:"expected_deliveries"`
	Delivered       uint64  `json:"delivered"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	EventsPerSec    float64 `json:"events_per_sec"`
	MBPerSec        float64 `json:"mb_per_sec"`
	// PublishElapsedSec / PublishEventsPerSec report the publisher-side
	// rate: how fast the publishers handed their load to the transport.
	PublishElapsedSec   float64 `json:"publish_elapsed_sec"`
	PublishEventsPerSec float64 `json:"publish_events_per_sec"`
}

// RunFanout measures broker fan-out throughput: Publishers flood one
// topic that Subscribers listen on through a single broker over unshaped
// links, reporting delivered events per second. Unlike RunFig3 this
// exercises the broker data path at host speed rather than under the
// paper's emulated 2003 testbed.
func RunFanout(opt FanoutOptions) (*FanoutReport, error) {
	res, err := bench.RunFanout(bench.FanoutConfig{
		Mode:            broker.Mode(opt.Mode),
		Subscribers:     opt.Subscribers,
		Publishers:      opt.Publishers,
		Events:          opt.Events,
		PayloadBytes:    opt.PayloadBytes,
		Transport:       opt.Transport,
		PublishBatching: opt.PublishBatching,
	})
	if err != nil {
		return nil, err
	}
	return &FanoutReport{
		Mode:                res.Mode,
		Transport:           res.Transport,
		Subscribers:         res.Subscribers,
		Publishers:          res.Publishers,
		Events:              res.Events,
		PayloadBytes:        res.PayloadBytes,
		PublishBatching:     res.PublishBatching,
		Expected:            res.Expected,
		Delivered:           res.Delivered,
		ElapsedSec:          res.ElapsedSec,
		EventsPerSec:        res.EventsPerSec,
		MBPerSec:            res.MBPerSec,
		PublishElapsedSec:   res.PublishElapsedSec,
		PublishEventsPerSec: res.PublishEventsPerSec,
	}, nil
}

// PublishPathOptions parameterises the publish-path benchmark: M
// publishers hand events to one broker over loopback TCP with no
// subscribers attached, isolating the client→broker publish path that
// WithPublishBatching accelerates.
type PublishPathOptions struct {
	// Publishers is the number of concurrent publishers (default 4).
	Publishers int
	// Events is the number of events each publisher sends (default 20000).
	Events int
	// PayloadBytes sizes each event payload (default 1200).
	PayloadBytes int
	// Batching enables the client-side batching publisher.
	Batching bool
}

// PublishPathReport is the outcome of one publish-path run.
type PublishPathReport struct {
	Publishers   int     `json:"publishers"`
	Events       int     `json:"events_per_publisher"`
	PayloadBytes int     `json:"payload_bytes"`
	Batching     bool    `json:"publish_batching"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	MBPerSec     float64 `json:"mb_per_sec"`
}

// RunPublishPath measures the client→broker publish path: events
// handed to the broker per second of publisher wall time, batched
// versus per-event.
func RunPublishPath(opt PublishPathOptions) (*PublishPathReport, error) {
	res, err := bench.RunPublishPath(bench.PublishPathConfig{
		Publishers:   opt.Publishers,
		Events:       opt.Events,
		PayloadBytes: opt.PayloadBytes,
		Batching:     opt.Batching,
	})
	if err != nil {
		return nil, err
	}
	return &PublishPathReport{
		Publishers:   res.Publishers,
		Events:       res.Events,
		PayloadBytes: res.PayloadBytes,
		Batching:     res.Batching,
		ElapsedSec:   res.ElapsedSec,
		EventsPerSec: res.EventsPerSec,
		MBPerSec:     res.MBPerSec,
	}, nil
}

// IngestOptions parameterises the sustained broker-ingest benchmark: M
// publishers flood one broker continuously while N subscribers drain,
// and the report carries the broker-side ingest rate over a steady-state
// measurement window.
type IngestOptions struct {
	// Mode selects the routing mode (default BrokerClientServer).
	Mode BrokerMode
	// Subscribers is the fan-out width (default 64).
	Subscribers int
	// Publishers is the number of concurrent publishers (default 4).
	Publishers int
	// PayloadBytes sizes each event payload (default 1200).
	PayloadBytes int
	// Transport selects the subscribers' links: "mem" (default) keeps
	// fan-out delivery cheap so the measured rate reflects broker-side
	// ingest; "tcp" runs the full wire path on both sides.
	Transport string
	// PubTransport selects the publishers' links (default "tcp", which
	// exercises the framed burst-decode ingest path).
	PubTransport string
	// Warmup runs load before the window opens (default 300ms).
	Warmup time.Duration
	// Duration is the measurement window (default 2s).
	Duration time.Duration
	// IngestBurst sets the broker's per-sweep burst bound: 0 keeps the
	// default (burst ingest on), 1 degenerates to event-at-a-time ingest
	// — the baseline configuration.
	IngestBurst int
	// DispatchBurst configures the subscribers' client-side delivery
	// plane: 0 keeps batched dispatch (one ring lock and one wakeup per
	// subscription per received burst), 1 degenerates to event-at-a-time
	// delivery — the pre-batching client baseline.
	DispatchBurst int
	// DisablePublishBatching turns off the client-side batching
	// Publisher the publishers use by default.
	DisablePublishBatching bool
	// WriterPool sets the broker's writer-pool width: 0 keeps the
	// default (GOMAXPROCS-derived shared writer pools), negative
	// degenerates to the legacy writer-goroutine-per-session plane.
	WriterPool int
}

// IngestReport is the outcome of one sustained-ingest run. Fields carry
// JSON tags so reports can be committed as machine-readable baselines.
type IngestReport struct {
	Mode            string  `json:"mode"`
	Transport       string  `json:"transport"`
	PubTransport    string  `json:"pub_transport,omitempty"`
	Subscribers     int     `json:"subscribers"`
	Publishers      int     `json:"publishers"`
	PayloadBytes    int     `json:"payload_bytes"`
	IngestBurst     int     `json:"ingest_burst"`
	PublishBatching bool    `json:"publish_batching"`
	WindowSec       float64 `json:"window_sec"`
	// IngestedPerSec is the headline number: events the broker accepted
	// and routed per second of steady-state window time.
	IngestedPerSec float64 `json:"ingested_per_sec"`
	// ArrivedPerSec is the raw inbound event rate including control
	// traffic; DeliveredPerSec the outbound rate across all subscribers.
	ArrivedPerSec   float64 `json:"arrived_per_sec"`
	DeliveredPerSec float64 `json:"delivered_per_sec"`
	// Client-side delivery-plane stats over the window: the subscribers'
	// delivery mode, how many ring-delivery bursts and consumer wakeups
	// the traffic cost, the events admitted to subscriber rings, the
	// amortization ratio (events per wakeup — 1.0 is the old per-event
	// path), and the high-water ring occupancy.
	DispatchBurst    int     `json:"dispatch_burst"`
	DeliveryBursts   uint64  `json:"delivery_bursts"`
	DeliveryWakeups  uint64  `json:"delivery_wakeups"`
	ClientDelivered  uint64  `json:"client_delivered"`
	EventsPerBurst   float64 `json:"events_per_burst"`
	EventsPerWakeup  float64 `json:"events_per_wakeup"`
	RingOccupancyMax int     `json:"ring_occupancy_max"`
	// GoMaxProcs is the runtime.GOMAXPROCS the run executed under;
	// WriterPools the broker's writer-pool count (0 = the legacy
	// per-session ablation); the pool stats report writer-pool occupancy
	// over the window — ready-list services, events drained through the
	// pools, and drained events per service.
	GoMaxProcs           int     `json:"gomaxprocs"`
	WriterPools          int     `json:"writer_pools"`
	PoolServices         uint64  `json:"pool_services,omitempty"`
	PoolDrained          uint64  `json:"pool_drained,omitempty"`
	EventsPerPoolService float64 `json:"events_per_pool_service,omitempty"`
}

// RunIngest measures sustained broker ingest: the rate at which one
// broker accepts and routes events under continuous multi-publisher
// load at a given fan-out width. IngestBurst 1 reproduces the
// event-at-a-time baseline; the default bursts ingest so routing and
// queue handoff are amortized across everything one read delivered.
func RunIngest(opt IngestOptions) (*IngestReport, error) {
	res, err := bench.RunIngest(bench.IngestConfig{
		Mode:                   broker.Mode(opt.Mode),
		Subscribers:            opt.Subscribers,
		Publishers:             opt.Publishers,
		PayloadBytes:           opt.PayloadBytes,
		Transport:              opt.Transport,
		PubTransport:           opt.PubTransport,
		Warmup:                 opt.Warmup,
		Duration:               opt.Duration,
		IngestBurst:            opt.IngestBurst,
		DispatchBurst:          opt.DispatchBurst,
		DisablePublishBatching: opt.DisablePublishBatching,
		WriterPool:             opt.WriterPool,
	})
	if err != nil {
		return nil, err
	}
	return ingestReport(res), nil
}

func ingestReport(res bench.IngestResult) *IngestReport {
	return &IngestReport{
		Mode:                 res.Mode,
		Transport:            res.Transport,
		PubTransport:         res.PubTransport,
		Subscribers:          res.Subscribers,
		Publishers:           res.Publishers,
		PayloadBytes:         res.PayloadBytes,
		IngestBurst:          res.IngestBurst,
		PublishBatching:      res.PublishBatching,
		WindowSec:            res.WindowSec,
		IngestedPerSec:       res.IngestedPerSec,
		ArrivedPerSec:        res.ArrivedPerSec,
		DeliveredPerSec:      res.DeliveredPerSec,
		DispatchBurst:        res.DispatchBurst,
		DeliveryBursts:       res.DeliveryBursts,
		DeliveryWakeups:      res.DeliveryWakeups,
		ClientDelivered:      res.ClientDelivered,
		EventsPerBurst:       res.EventsPerBurst,
		EventsPerWakeup:      res.EventsPerWakeup,
		RingOccupancyMax:     res.RingOccupancyMax,
		GoMaxProcs:           res.GoMaxProcs,
		WriterPools:          res.WriterPools,
		PoolServices:         res.PoolServices,
		PoolDrained:          res.PoolDrained,
		EventsPerPoolService: res.EventsPerPoolService,
	}
}

// IngestScalingOptions parameterises the GOMAXPROCS scaling ladder: the
// base ingest workload rerun at each rung under the writer-pool plane
// and the per-session-writer ablation.
type IngestScalingOptions struct {
	// Base is the per-cell workload (its WriterPool field is overridden
	// per cell).
	Base IngestOptions
	// Procs is the GOMAXPROCS ladder; empty selects {1, 2, 4, ...,
	// min(8, NumCPU)}.
	Procs []int
}

// IngestScalingCell is one ladder rung: the same workload under the
// writer-pool plane and the per-session ablation at one GOMAXPROCS.
type IngestScalingCell struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	WriterPool *IngestReport `json:"writer_pool"`
	PerSession *IngestReport `json:"per_session"`
}

// IngestScalingReport is the full ladder plus the host core count.
type IngestScalingReport struct {
	HostCPUs int                 `json:"host_cpus"`
	Cells    []IngestScalingCell `json:"cells"`
}

// RunIngestScaling runs the sustained-ingest workload across the
// GOMAXPROCS ladder (restoring GOMAXPROCS afterwards), measuring the
// writer-pool default against the writer-goroutine-per-session
// ablation at every rung.
func RunIngestScaling(opt IngestScalingOptions) (*IngestScalingReport, error) {
	res, err := bench.RunIngestScaling(bench.IngestScalingConfig{
		Base: bench.IngestConfig{
			Mode:                   broker.Mode(opt.Base.Mode),
			Subscribers:            opt.Base.Subscribers,
			Publishers:             opt.Base.Publishers,
			PayloadBytes:           opt.Base.PayloadBytes,
			Transport:              opt.Base.Transport,
			PubTransport:           opt.Base.PubTransport,
			Warmup:                 opt.Base.Warmup,
			Duration:               opt.Base.Duration,
			IngestBurst:            opt.Base.IngestBurst,
			DispatchBurst:          opt.Base.DispatchBurst,
			DisablePublishBatching: opt.Base.DisablePublishBatching,
		},
		Procs: opt.Procs,
	})
	if err != nil {
		return nil, err
	}
	out := &IngestScalingReport{HostCPUs: res.HostCPUs}
	for _, cell := range res.Cells {
		out.Cells = append(out.Cells, IngestScalingCell{
			GoMaxProcs: cell.GoMaxProcs,
			WriterPool: ingestReport(cell.WriterPool),
			PerSession: ingestReport(cell.PerSession),
		})
	}
	return out, nil
}

// MeshOptions parameterises the cross-mesh fan-out benchmark: a ring of
// federated brokers linked by supervised TCP peer links, subscribers
// spread round-robin across all nodes, publishers flooding node 0.
// Zero values run the defaults.
type MeshOptions struct {
	// Mode selects the routing mode (default BrokerClientServer).
	Mode BrokerMode
	// Brokers is the mesh size (default 4; 1 runs the single-broker
	// control cell).
	Brokers int
	// Topology shapes the peer links: "ring" (default), "star", or
	// "full".
	Topology string
	// MeshFlood disables routed forwarding — the flood ablation cell.
	MeshFlood bool
	// CreditWindow overrides the per-peer-link credit window (0 keeps
	// the broker default; negative disables flow control).
	CreditWindow int
	// Subscribers is the total fan-out width across the mesh (default 64).
	Subscribers int
	// Publishers is the number of concurrent publishers on broker 0
	// (default 4).
	Publishers int
	// PayloadBytes sizes each event payload (default 1200, min 8).
	PayloadBytes int
	// Warmup runs load before the window opens (default 300ms).
	Warmup time.Duration
	// Duration is the measurement window (default 2s).
	Duration time.Duration
}

// MeshHopLatency is the delivery-latency distribution at one ring
// distance from the publishing broker.
type MeshHopLatency struct {
	Hop    int     `json:"hop"`
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// MeshReport is the outcome of one cross-mesh fan-out run. Fields carry
// JSON tags so reports can be committed as machine-readable baselines.
type MeshReport struct {
	Mode         string  `json:"mode"`
	Topology     string  `json:"topology"`
	Forwarding   string  `json:"forwarding"`
	Brokers      int     `json:"brokers"`
	Subscribers  int     `json:"subscribers"`
	Publishers   int     `json:"publishers"`
	PayloadBytes int     `json:"payload_bytes"`
	WindowSec    float64 `json:"window_sec"`
	// DeliveredPerSec is the headline number: events received by
	// subscribers per second, across the whole mesh.
	DeliveredPerSec float64 `json:"delivered_per_sec"`
	// CrossMeshPerSec is the share that crossed at least one peer link.
	CrossMeshPerSec float64 `json:"cross_mesh_per_sec"`
	// ForwardedPerSec is the rate of events put on peer links.
	ForwardedPerSec float64 `json:"forwarded_per_sec"`
	// ForwardedFramesPerDelivered is the wire-amplification ratio:
	// peer-link frames staged per client-delivered event.
	ForwardedFramesPerDelivered float64 `json:"forwarded_frames_per_delivered_event"`
	// QueueOverflowDrops sums per-peer-link best-effort overflow drops
	// during the window.
	QueueOverflowDrops uint64 `json:"queue_overflow_drops"`
	// CreditStalls sums per-peer-link credit-window stalls (events shed
	// at the sender before staging) during the window.
	CreditStalls uint64 `json:"credit_stalls"`
	// DupDropped counts ring duplicates absorbed broker-side; the
	// client-observed DupDeliveries must be zero.
	DupDropped    uint64 `json:"dup_dropped"`
	DupDeliveries uint64 `json:"dup_deliveries"`
	// Redials counts mesh supervisor redials during the run.
	Redials uint64 `json:"redials"`
	// Hops is the per-ring-distance latency distribution.
	Hops []MeshHopLatency `json:"hops"`
}

// RunMesh measures cross-mesh fan-out: a ring of federated brokers
// forwarding one publisher node's flood to subscribers spread across the
// whole mesh, reporting delivered and cross-mesh events per second,
// per-hop added latency, and loop-guard effectiveness on the cyclic
// topology. Brokers=1 runs the single-broker control the federation
// numbers are compared against.
func RunMesh(opt MeshOptions) (*MeshReport, error) {
	res, err := bench.RunMesh(bench.MeshConfig{
		Mode:         broker.Mode(opt.Mode),
		Brokers:      opt.Brokers,
		Topology:     opt.Topology,
		MeshFlood:    opt.MeshFlood,
		CreditWindow: opt.CreditWindow,
		Subscribers:  opt.Subscribers,
		Publishers:   opt.Publishers,
		PayloadBytes: opt.PayloadBytes,
		Warmup:       opt.Warmup,
		Duration:     opt.Duration,
	})
	if err != nil {
		return nil, err
	}
	r := &MeshReport{
		Mode:                        res.Mode,
		Topology:                    res.Topology,
		Forwarding:                  res.Forwarding,
		Brokers:                     res.Brokers,
		Subscribers:                 res.Subscribers,
		Publishers:                  res.Publishers,
		PayloadBytes:                res.PayloadBytes,
		WindowSec:                   res.WindowSec,
		DeliveredPerSec:             res.DeliveredPerSec,
		CrossMeshPerSec:             res.CrossMeshPerSec,
		ForwardedPerSec:             res.ForwardedPerSec,
		ForwardedFramesPerDelivered: res.ForwardedFramesPerDelivered,
		DupDropped:                  res.DupDropped,
		DupDeliveries:               res.DupDeliveries,
		Redials:                     res.Redials,
		QueueOverflowDrops:          res.QueueOverflowDrops,
		CreditStalls:                res.CreditStalls,
	}
	for _, h := range res.Hops {
		r.Hops = append(r.Hops, MeshHopLatency{
			Hop: h.Hop, Count: h.Count, MeanMs: h.MeanMs, P50Ms: h.P50Ms, P99Ms: h.P99Ms,
		})
	}
	return r, nil
}

// CapacityOptions parameterises one capacity measurement point.
type CapacityOptions struct {
	// Kind selects the stream (Audio or Video).
	Kind MediaKind
	// Clients is the number of receivers on the broker.
	Clients int
	// Packets is the number of packets streamed.
	Packets int
}

// CapacityReport is the outcome of one capacity point.
type CapacityReport struct {
	Clients      int
	MeanDelayMs  float64
	P99DelayMs   float64
	MeanJitterMs float64
	LossRate     float64
	// GoodQuality reports whether the point passed the §3.2 quality
	// gates.
	GoodQuality bool
	Elapsed     time.Duration
}

// RunCapacity measures one capacity point: one sender streaming to
// Clients receivers through a single broker — the experiment behind the
// paper's ">1000 audio / >400 video clients" claims. Kind must be Audio
// or Video.
func RunCapacity(opt CapacityOptions) (*CapacityReport, error) {
	var kind bench.MediaKind
	switch opt.Kind {
	case Audio:
		kind = bench.MediaAudio
	case Video:
		kind = bench.MediaVideo
	default:
		return nil, fmt.Errorf("globalmmcs: capacity kind %q: %w", opt.Kind, ErrNoSuchMedia)
	}
	res, err := bench.RunCapacity(bench.CapacityConfig{
		Kind:    kind,
		Clients: opt.Clients,
		Packets: opt.Packets,
	})
	if err != nil {
		return nil, err
	}
	return &CapacityReport{
		Clients:      res.Clients,
		MeanDelayMs:  res.MeanDelayMs,
		P99DelayMs:   res.P99DelayMs,
		MeanJitterMs: res.MeanJitterMs,
		LossRate:     res.LossRate,
		GoodQuality:  res.GoodQuality,
		Elapsed:      res.Elapsed,
	}, nil
}

// ReplayOptions parameterises the durable-topic-log benchmark: a live
// fan-out control, the same load with the topic recorded (the
// recording tax), a replay fan-out where N late joiners drain a
// prefilled log, and a catch-up cell where a joiner starts a lag's
// worth of history behind a paced live publisher. Zero values run the
// defaults.
type ReplayOptions struct {
	// Subscribers is the fan-out width (default 16).
	Subscribers int
	// Publishers drive the live cells (default 2).
	Publishers int
	// PayloadBytes sizes each event payload (default 256).
	PayloadBytes int
	// Prefill is the recorded history the replay fan-out cell drains
	// (default 50000 events).
	Prefill int
	// Warmup precedes each live window (default 300ms).
	Warmup time.Duration
	// Duration is the live cells' measurement window (default 1s).
	Duration time.Duration
	// CatchupLag is how far behind the catch-up joiner starts (default
	// 10s); CatchupRate is the paced live publish rate it must outrun
	// (default 20000 events/sec).
	CatchupLag  time.Duration
	CatchupRate int
	// Transport selects the subscribers' links in every cell — live,
	// recorded and replay alike, so the replay-vs-live ratio compares
	// the same delivery path: "tcp" (default) or "mem".
	Transport string
}

// ReplayReport is the outcome of one replay benchmark run. Fields
// carry JSON tags so reports can be committed as machine-readable
// baselines.
type ReplayReport struct {
	Subscribers  int    `json:"subscribers"`
	Publishers   int    `json:"publishers"`
	PayloadBytes int    `json:"payload_bytes"`
	Prefill      int    `json:"prefill"`
	Transport    string `json:"transport"`
	// LivePerSec is delivered events/sec with recording off;
	// RecordedLivePerSec the same load recorded; RecordOverheadPct the
	// recording tax between them.
	LivePerSec         float64 `json:"live_per_sec"`
	RecordedLivePerSec float64 `json:"recorded_live_per_sec"`
	RecordOverheadPct  float64 `json:"record_overhead_pct"`
	// RecordedPerSec is the log append rate under the recorded live
	// load.
	RecordedPerSec float64 `json:"recorded_per_sec"`
	// ReplayPerSec is the total replay delivery rate across all joiners
	// draining the prefilled log; ReplayVsLive compares it with the
	// live control.
	ReplayPerSec float64 `json:"replay_per_sec"`
	ReplayVsLive float64 `json:"replay_vs_live"`
	// Catch-up cell: the joiner started CatchupEvents (CatchupLagSec of
	// traffic at CatchupLiveRps) behind and reached the live tail in
	// CatchupSec, draining history at CatchupPerSec.
	CatchupLagSec  float64 `json:"catchup_lag_sec"`
	CatchupEvents  int     `json:"catchup_events"`
	CatchupSec     float64 `json:"catchup_sec"`
	CatchupPerSec  float64 `json:"catchup_per_sec"`
	CatchupLiveRps int     `json:"catchup_live_rate"`
}

// RunReplay measures the durable topic log end to end: the recording
// tax on live fan-out, replay fan-out bandwidth for late joiners, and
// how long a lagging joiner takes to catch up to a live publisher.
func RunReplay(opt ReplayOptions) (*ReplayReport, error) {
	res, err := bench.RunReplay(bench.ReplayConfig{
		Subscribers:  opt.Subscribers,
		Publishers:   opt.Publishers,
		PayloadBytes: opt.PayloadBytes,
		Prefill:      opt.Prefill,
		Warmup:       opt.Warmup,
		Duration:     opt.Duration,
		CatchupLag:   opt.CatchupLag,
		CatchupRate:  opt.CatchupRate,
		Transport:    opt.Transport,
	})
	if err != nil {
		return nil, err
	}
	return &ReplayReport{
		Subscribers:        res.Subscribers,
		Publishers:         res.Publishers,
		PayloadBytes:       res.PayloadBytes,
		Prefill:            res.Prefill,
		Transport:          res.Transport,
		LivePerSec:         res.LivePerSec,
		RecordedLivePerSec: res.RecordedLivePerSec,
		RecordOverheadPct:  res.RecordOverheadPct,
		RecordedPerSec:     res.RecordedPerSec,
		ReplayPerSec:       res.ReplayPerSec,
		ReplayVsLive:       res.ReplayVsLive,
		CatchupLagSec:      res.CatchupLagSec,
		CatchupEvents:      res.CatchupEvents,
		CatchupSec:         res.CatchupSec,
		CatchupPerSec:      res.CatchupPerSec,
		CatchupLiveRps:     res.CatchupLiveRps,
	}, nil
}

// ChurnOptions parameterises the connection-churn benchmark: a
// reconnect-enabled subscriber on a recorded topic is repeatedly cut
// while a paced reliable publisher keeps going, and every cycle clocks
// the kill → caught-up round trip. Zero values run the defaults.
type ChurnOptions struct {
	// Cycles is how many kill/reconnect rounds to run (default 20).
	Cycles int
	// PublishRate is the paced reliable publish rate in events/sec the
	// subscriber must keep up with across cuts (default 5000).
	PublishRate int
	// PayloadBytes sizes each event payload (default 256).
	PayloadBytes int
	// SessionLinger is the broker's parked-session window (default 30s).
	SessionLinger time.Duration
}

// ChurnReport is the outcome of one churn benchmark run. The run fails
// outright if any event is lost or duplicated across the cuts, so a
// report always describes an exactly-once run.
type ChurnReport struct {
	Cycles       int `json:"cycles"`
	PublishRate  int `json:"publish_rate"`
	PayloadBytes int `json:"payload_bytes"`
	// Published and Delivered match in a valid run; Duplicates and Gaps
	// are zero.
	Published  uint64 `json:"published"`
	Delivered  uint64 `json:"delivered"`
	Duplicates uint64 `json:"duplicates"`
	Gaps       uint64 `json:"gaps"`
	// ResumesPerSec is completed kill/reconnect cycles over the run's
	// wall time.
	ResumesPerSec float64 `json:"resumes_per_sec"`
	// Catch-up latency per cycle (kill → all events published at check
	// time delivered): median, p95 and worst case in milliseconds.
	CatchupP50Ms float64 `json:"catchup_p50_ms"`
	CatchupP95Ms float64 `json:"catchup_p95_ms"`
	CatchupMaxMs float64 `json:"catchup_max_ms"`
	ElapsedSec   float64 `json:"elapsed_sec"`
}

// RunChurn measures the resilience plane under connection churn: resume
// handshake, reliable-window salvage and log-backed catch-up, end to
// end, with the exactly-once contract verified inline.
func RunChurn(opt ChurnOptions) (*ChurnReport, error) {
	res, err := bench.RunChurn(bench.ChurnConfig{
		Cycles:        opt.Cycles,
		PublishRate:   opt.PublishRate,
		PayloadBytes:  opt.PayloadBytes,
		SessionLinger: opt.SessionLinger,
	})
	if err != nil {
		return nil, err
	}
	return &ChurnReport{
		Cycles:        res.Cycles,
		PublishRate:   res.PublishRate,
		PayloadBytes:  res.PayloadBytes,
		Published:     res.Published,
		Delivered:     res.Delivered,
		Duplicates:    res.Duplicates,
		Gaps:          res.Gaps,
		ResumesPerSec: res.ResumesPerSec,
		CatchupP50Ms:  res.CatchupP50Ms,
		CatchupP95Ms:  res.CatchupP95Ms,
		CatchupMaxMs:  res.CatchupMaxMs,
		ElapsedSec:    res.ElapsedSec,
	}, nil
}
