package globalmmcs

import (
	"time"

	"github.com/globalmmcs/globalmmcs/internal/h323"
	"github.com/globalmmcs/globalmmcs/internal/sip"
)

// SIPEndpoint emulates an external SIP user agent — the kind of
// endpoint that joins Global-MMCS sessions through the SIP gateway.
// Useful for interop demos and tests; real deployments face actual SIP
// phones at Server.SIPAddr.
type SIPEndpoint struct {
	ep *sip.Endpoint
}

// DialSIPEndpoint creates a SIP user agent for user talking to the
// server at serverAddr (Server.SIPAddr).
func DialSIPEndpoint(user, serverAddr string) (*SIPEndpoint, error) {
	ep, err := sip.NewEndpoint(user, serverAddr)
	if err != nil {
		return nil, err
	}
	return &SIPEndpoint{ep: ep}, nil
}

// Register binds the endpoint's contact in the registrar for expires.
func (e *SIPEndpoint) Register(domain string, expires time.Duration) error {
	return e.ep.Register(domain, expires)
}

// Invite calls into a session through the gateway, offering local RTP
// ports for audio and video (0 omits the stream).
func (e *SIPEndpoint) Invite(domain, sessionID string, audioPort, videoPort int) (*SIPCall, error) {
	c, err := e.ep.Invite(domain, sessionID, audioPort, videoPort)
	if err != nil {
		return nil, err
	}
	return &SIPCall{c: c}, nil
}

// Hangup ends an established call.
func (e *SIPEndpoint) Hangup(c *SIPCall) error { return e.ep.Hangup(c.c) }

// Close releases the endpoint's socket.
func (e *SIPEndpoint) Close() { e.ep.Close() }

// SIPCall is an established call from a SIPEndpoint.
type SIPCall struct {
	c *sip.Call
}

// AudioAddr returns the gateway's audio RTP address for this call.
func (c *SIPCall) AudioAddr() (string, bool) { return c.c.AudioAddr() }

// VideoAddr returns the gateway's video RTP address for this call.
func (c *SIPCall) VideoAddr() (string, bool) { return c.c.VideoAddr() }

// H323Endpoint emulates an external H.323 terminal joining sessions
// through the gatekeeper and gateway.
type H323Endpoint struct {
	ep *h323.Endpoint
}

// DialH323Endpoint creates an H.323 terminal with the given alias
// talking to the gatekeeper at rasAddr (Server.GatekeeperAddr).
func DialH323Endpoint(alias, rasAddr string) (*H323Endpoint, error) {
	ep, err := h323.NewEndpoint(alias, rasAddr)
	if err != nil {
		return nil, err
	}
	return &H323Endpoint{ep: ep}, nil
}

// Discover performs gatekeeper discovery (GRQ/GCF).
func (e *H323Endpoint) Discover() error { return e.ep.Discover() }

// Register registers the terminal's alias (RRQ/RCF).
func (e *H323Endpoint) Register() error { return e.ep.Register() }

// PlaceCall admits and sets up a call into a session. localRTP maps
// channel kinds ("audio", "video") to the terminal's RTP addresses.
func (e *H323Endpoint) PlaceCall(sessionID string, localRTP map[string]string) (*H323Call, error) {
	c, err := e.ep.PlaceCall(sessionID, localRTP)
	if err != nil {
		return nil, err
	}
	return &H323Call{c: c}, nil
}

// Close releases the terminal's sockets.
func (e *H323Endpoint) Close() { e.ep.Close() }

// H323Call is an established call from an H323Endpoint.
type H323Call struct {
	c *h323.Call
}

// Hangup releases the call.
func (c *H323Call) Hangup() error { return c.c.Hangup() }
