package globalmmcs

import (
	"context"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/core"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// Client is a user's collaboration endpoint: session control, chat,
// presence and media over one broker connection. Create one per user
// with Server.Client.
type Client struct {
	c *core.Client
}

// UserID returns the client identity.
func (c *Client) UserID() string { return c.c.UserID() }

// Close releases the client and its broker connection.
func (c *Client) Close() error { return c.c.Close() }

// CreateSession creates a session and returns a handle bound to this
// client. With no options the session is ad-hoc and active immediately;
// WithSchedule makes it a scheduled session. The creator is not a
// participant until it joins.
func (c *Client) CreateSession(ctx context.Context, name string, opts ...SessionOption) (*Session, error) {
	req := xgsp.CreateSession{Name: name}
	for _, opt := range opts {
		opt(&req)
	}
	info, err := c.c.XGSP.Create(ctx, req)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Session{c: c.c, info: info}, nil
}

// SessionOption configures a session at CreateSession.
type SessionOption func(*xgsp.CreateSession)

// WithDescription attaches a free-form description to the session.
func WithDescription(desc string) SessionOption {
	return func(r *xgsp.CreateSession) { r.Description = desc }
}

// WithCommunity tags the session with its home community.
func WithCommunity(community string) SessionOption {
	return func(r *xgsp.CreateSession) { r.Community = community }
}

// WithSchedule makes the session scheduled: it activates at start and
// expires at end — the paper's hybrid collaboration pattern. Joining
// outside the active window fails with ErrSessionNotActive.
func WithSchedule(start, end time.Time) SessionOption {
	return func(r *xgsp.CreateSession) {
		r.Start = xgsp.FormatTime(start)
		r.End = xgsp.FormatTime(end)
	}
}

// Join joins a session by id with a logical terminal name and returns a
// handle bound to this client.
func (c *Client) Join(ctx context.Context, sessionID, terminal string) (*Session, error) {
	info, err := c.c.Join(ctx, sessionID, terminal)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Session{c: c.c, info: info}, nil
}

// Sessions lists the visible sessions, including scheduled ones that
// have not yet activated.
func (c *Client) Sessions(ctx context.Context) ([]SessionDetails, error) {
	list, err := c.c.XGSP.List(ctx, true)
	if err != nil {
		return nil, wrapErr(err)
	}
	out := make([]SessionDetails, len(list))
	for i := range list {
		out[i] = detailsFromInfo(&list[i])
	}
	return out, nil
}

// Session returns a handle for an existing session without joining it.
func (c *Client) Session(ctx context.Context, sessionID string) (*Session, error) {
	info, err := c.c.XGSP.Lookup(ctx, sessionID)
	if err != nil {
		return nil, wrapErr(err)
	}
	if info == nil {
		return nil, tag(ErrSessionNotFound, errSessionID(sessionID))
	}
	return &Session{c: c.c, info: info}, nil
}

// SetPresence publishes the user's presence state into a community.
func (c *Client) SetPresence(ctx context.Context, community string, status PresenceStatus, note string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return wrapErr(c.c.Chat.SetPresence(community, internalStatus(status), note))
}

// WatchPresence streams every presence update of a community. Delivery
// QoS is set with StreamOptions.
func (c *Client) WatchPresence(ctx context.Context, community string, opts ...StreamOption) (*PresenceWatch, error) {
	sub, err := c.c.Chat.WatchCommunity(ctx, community, brokerDepth(streamBuffer(defaultChatBuffer, opts)))
	if err != nil {
		return nil, wrapErr(err)
	}
	name := c.c.UserID() + ".presence." + community
	return newPresenceWatch(sub, c.c.Metrics, name, opts), nil
}

type errSessionID string

func (e errSessionID) Error() string { return "no session " + string(e) }
