// Command gmmcs-bench regenerates the paper's evaluation:
//
//   - "-exp fig3": Figure 3 — per-packet delay and jitter for 12 of 400
//     video clients, NaradaBrokering-substitute broker vs JMF-style
//     reflector (writes the four series as TSV for plotting).
//   - "-exp audiocap": the §3.2 claim that one broker supports >1000
//     audio clients.
//   - "-exp videocap": the §3.2 claim that one broker supports >400
//     video clients.
//   - "-exp fanout": raw broker fan-out throughput at host speed, with
//     publishers per-event and batched (the format of BENCH_broker.json).
//   - "-exp pubpath": the client→broker publish path in isolation,
//     per-event versus batched publishing.
//   - "-exp ingest": sustained broker-side ingest under continuous
//     multi-publisher load, event-at-a-time versus burst ingest.
//   - "-exp mesh": cross-mesh fan-out over a ring of federated brokers
//     (supervised peer links, loop-guarded cyclic topology) versus the
//     single-broker control.
//   - "-exp replay": the durable topic log — recording tax on live
//     fan-out, replay fan-out bandwidth for late joiners, and catch-up
//     time for a joiner starting a lag's worth of history behind a
//     paced live publisher.
//   - "-exp churn": the resilience plane — a reconnect-enabled
//     subscriber is repeatedly cut mid reliable stream and each cycle
//     clocks kill → caught-up (resume, window salvage, log-backed
//     catch-up), with exactly-once delivery verified inline.
//
// Full paper-scale runs take a few minutes (they are paced in real time
// like the original testbed); -scale shrinks them for a quick look, and
// -short shrinks everything to CI scale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		exp    = flag.String("exp", "fig3", "experiment: fig3, audiocap, videocap, fanout, pubpath, ingest, mesh, replay, churn, all")
		scale  = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper scale)")
		outDir = flag.String("out", "bench-out", "directory for TSV series dumps")
		subs   = flag.Int("fanout-subs", 64, "fanout/ingest: subscriber count")
		pubs   = flag.Int("fanout-pubs", 4, "fanout/ingest: publisher count")
		events = flag.Int("fanout-events", 2000, "fanout: events per publisher")
		window = flag.Duration("ingest-window", 2*time.Second, "ingest: steady-state measurement window")
		topo   = flag.String("mesh-topology", "ring", "mesh: peer-link topology (ring, star, full)")
		short  = flag.Bool("short", false, "shrink runs for a quick (or CI) look")
		pprofA = flag.String("pprof", "", "serve net/http/pprof on this address while the experiment runs (empty = off)")
		cpuOut = flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")

		replaySubs    = flag.Int("replay-subs", 16, "replay: late-joiner fan-out width")
		replayPrefill = flag.Int("replay-prefill", 50000, "replay: recorded history the joiners drain")
		catchupLag    = flag.Duration("replay-catchup-lag", 10*time.Second, "replay: how far behind the catch-up joiner starts")
		catchupRate   = flag.Int("replay-catchup-rate", 20000, "replay: paced live publish rate the joiner must outrun (events/sec)")
		replayTrans   = flag.String("replay-transport", "tcp", "replay: subscriber transport in every cell (tcp, mem)")

		churnCycles = flag.Int("churn-cycles", 20, "churn: kill/reconnect rounds")
		churnRate   = flag.Int("churn-rate", 5000, "churn: paced reliable publish rate (events/sec)")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	if *pprofA != "" {
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofA, nil))
		}()
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", *pprofA)
	}
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *cpuOut)
		}()
	}
	if *short {
		*scale = min(*scale, 0.05)
		*subs = min(*subs, 16)
		*events = min(*events, 250)
		*window = min(*window, 300*time.Millisecond)
		*replaySubs = min(*replaySubs, 4)
		*replayPrefill = min(*replayPrefill, 2000)
		*catchupLag = min(*catchupLag, time.Second)
		*catchupRate = min(*catchupRate, 5000)
		*churnCycles = min(*churnCycles, 8)
		*churnRate = min(*churnRate, 2000)
	}
	switch *exp {
	case "fig3":
		return runFig3(*scale, *outDir)
	case "audiocap":
		return runCapacity(globalmmcs.Audio, *scale)
	case "videocap":
		return runCapacity(globalmmcs.Video, *scale)
	case "fanout":
		return runFanout(*subs, *pubs, *events)
	case "pubpath":
		return runPubPath(*pubs)
	case "ingest":
		return runIngest(*subs, *pubs, *window)
	case "mesh":
		return runMesh(*topo, *subs, *pubs, *window)
	case "replay":
		return runReplay(*replaySubs, *replayPrefill, *window, *catchupLag, *catchupRate, *replayTrans)
	case "churn":
		return runChurn(*churnCycles, *churnRate)
	case "all":
		if err := runFig3(*scale, *outDir); err != nil {
			return err
		}
		if err := runCapacity(globalmmcs.Audio, *scale); err != nil {
			return err
		}
		if err := runCapacity(globalmmcs.Video, *scale); err != nil {
			return err
		}
		if err := runFanout(*subs, *pubs, *events); err != nil {
			return err
		}
		if err := runPubPath(*pubs); err != nil {
			return err
		}
		if err := runIngest(*subs, *pubs, *window); err != nil {
			return err
		}
		if err := runMesh(*topo, *subs, *pubs, *window); err != nil {
			return err
		}
		if err := runReplay(*replaySubs, *replayPrefill, *window, *catchupLag, *catchupRate, *replayTrans); err != nil {
			return err
		}
		return runChurn(*churnCycles, *churnRate)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
}

// runMesh measures cross-mesh fan-out over a 4-broker federation in
// routed and flood-ablation forwarding, plus the single-broker control
// cell, and prints the reports as a JSON array (the format of
// BENCH_broker.json's mesh section). The flood cell disables the credit
// window too, reproducing the pre-routing forwarding plane exactly.
func runMesh(topology string, subs, pubs int, window time.Duration) error {
	fmt.Fprintf(os.Stderr, "=== Cross-mesh fan-out (%s): %d subscribers, %d publishers on node 0, %s window ===\n",
		topology, subs, pubs, window)
	cells := []struct {
		label   string
		brokers int
		flood   bool
		credit  int
	}{
		{"4-broker routed", 4, false, 0},
		{"4-broker flood", 4, true, -1},
		{"single control", 1, false, 0},
	}
	var reports []*globalmmcs.MeshReport
	for _, cell := range cells {
		res, err := globalmmcs.RunMesh(globalmmcs.MeshOptions{
			Brokers:      cell.brokers,
			Topology:     topology,
			MeshFlood:    cell.flood,
			CreditWindow: cell.credit,
			Subscribers:  subs,
			Publishers:   pubs,
			Duration:     window,
		})
		if err != nil {
			return fmt.Errorf("mesh: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%-15s %12.0f delivered/s %12.0f cross-mesh/s %12.0f forwarded/s  fwd/delivered %.3f  dup_dropped %d  dup_delivered %d  overflow_drops %d  credit_stalls %d\n",
			cell.label, res.DeliveredPerSec, res.CrossMeshPerSec, res.ForwardedPerSec,
			res.ForwardedFramesPerDelivered, res.DupDropped, res.DupDeliveries,
			res.QueueOverflowDrops, res.CreditStalls)
		for _, h := range res.Hops {
			fmt.Fprintf(os.Stderr, "    hop %d: p50 %.2f ms  p99 %.2f ms  (n=%d)\n", h.Hop, h.P50Ms, h.P99Ms, h.Count)
		}
		if res.DupDeliveries != 0 {
			return fmt.Errorf("mesh: clients observed %d duplicate deliveries on the cyclic topology", res.DupDeliveries)
		}
		reports = append(reports, res)
	}
	out, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runReplay measures the durable topic log — recording tax, replay
// fan-out and catch-up — and prints the report as JSON (the format of
// BENCH_broker.json's replay section).
func runReplay(subs, prefill int, window, catchupLag time.Duration, catchupRate int, trans string) error {
	fmt.Fprintf(os.Stderr, "=== Durable topic log: %d joiners x %d prefilled events over %s, %s live window, %s/%d ev/s catch-up ===\n",
		subs, prefill, trans, window, catchupLag, catchupRate)
	res, err := globalmmcs.RunReplay(globalmmcs.ReplayOptions{
		Subscribers: subs,
		Prefill:     prefill,
		Duration:    window,
		CatchupLag:  catchupLag,
		CatchupRate: catchupRate,
		Transport:   trans,
	})
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	fmt.Fprintf(os.Stderr, "live %12.0f ev/s   recorded live %12.0f ev/s   overhead %5.1f%%   appended %12.0f ev/s\n",
		res.LivePerSec, res.RecordedLivePerSec, res.RecordOverheadPct, res.RecordedPerSec)
	fmt.Fprintf(os.Stderr, "replay fan-out %12.0f ev/s (%.2fx live)\n", res.ReplayPerSec, res.ReplayVsLive)
	fmt.Fprintf(os.Stderr, "catch-up: %d events (%.1fs of history) drained in %.2fs (%.0f ev/s) against %d ev/s live\n",
		res.CatchupEvents, res.CatchupLagSec, res.CatchupSec, res.CatchupPerSec, res.CatchupLiveRps)
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runChurn measures the resilience plane under connection churn and
// prints the report as JSON (the format of BENCH_broker.json's churn
// section). The run itself enforces exactly-once delivery: any lost or
// duplicated event across the cuts is an error, not a statistic.
func runChurn(cycles, rate int) error {
	fmt.Fprintf(os.Stderr, "=== Connection churn: %d kill/reconnect cycles against a %d ev/s reliable stream ===\n",
		cycles, rate)
	res, err := globalmmcs.RunChurn(globalmmcs.ChurnOptions{
		Cycles:      cycles,
		PublishRate: rate,
	})
	if err != nil {
		return fmt.Errorf("churn: %w", err)
	}
	fmt.Fprintf(os.Stderr, "%.1f resumes/s   catch-up p50 %6.1f ms  p95 %6.1f ms  max %6.1f ms   %d/%d delivered (dups %d, gaps %d)\n",
		res.ResumesPerSec, res.CatchupP50Ms, res.CatchupP95Ms, res.CatchupMaxMs,
		res.Delivered, res.Published, res.Duplicates, res.Gaps)
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runIngest measures sustained broker-side ingest across the batching
// ablation ladder — full event-at-a-time (the pre-batching data path),
// broker burst ingest with per-event client delivery (the PR-4 plane),
// and the full batched delivery plane — and prints the reports as a
// JSON array (the format of BENCH_broker.json's ingest section).
func runIngest(subs, pubs int, window time.Duration) error {
	fmt.Fprintf(os.Stderr, "=== Sustained ingest: %d mem subscribers, %d continuous tcp publishers, %s window ===\n",
		subs, pubs, window)
	cells := []struct {
		label                  string
		ingestBurst, dispBurst int
	}{
		{"event-at-a-time", 1, 1},
		{"burst ingest", 0, 1},
		{"batched delivery", 0, 0},
	}
	var reports []*globalmmcs.IngestReport
	for _, cell := range cells {
		res, err := globalmmcs.RunIngest(globalmmcs.IngestOptions{
			Subscribers:   subs,
			Publishers:    pubs,
			Duration:      window,
			IngestBurst:   cell.ingestBurst,
			DispatchBurst: cell.dispBurst,
		})
		if err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
		fmt.Fprintf(os.Stderr, "%-17s %12.0f ingested/s %12.0f delivered/s %8.1f ev/lock\n",
			cell.label, res.IngestedPerSec, res.DeliveredPerSec, res.EventsPerBurst)
		reports = append(reports, res)
	}
	if len(reports) == 3 && reports[0].IngestedPerSec > 0 {
		fmt.Fprintf(os.Stderr, "burst/baseline ingest speedup: %.2fx\n",
			reports[1].IngestedPerSec/reports[0].IngestedPerSec)
		fmt.Fprintf(os.Stderr, "batched-delivery/burst delivered speedup: %.2fx\n",
			reports[2].DeliveredPerSec/reports[1].DeliveredPerSec)
	}
	out, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))

	// GOMAXPROCS scaling ladder: the same workload per rung, writer-pool
	// plane versus the writer-goroutine-per-session ablation (the format
	// of BENCH_broker.json's ingest.scaling section).
	scaling, err := globalmmcs.RunIngestScaling(globalmmcs.IngestScalingOptions{
		Base: globalmmcs.IngestOptions{
			Subscribers: subs,
			Publishers:  pubs,
			Duration:    window,
		},
	})
	if err != nil {
		return fmt.Errorf("ingest scaling: %w", err)
	}
	fmt.Fprintf(os.Stderr, "=== GOMAXPROCS scaling ladder (%d host cpus) ===\n", scaling.HostCPUs)
	for _, cell := range scaling.Cells {
		ratio := 0.0
		if cell.PerSession.DeliveredPerSec > 0 {
			ratio = cell.WriterPool.DeliveredPerSec / cell.PerSession.DeliveredPerSec
		}
		fmt.Fprintf(os.Stderr, "GOMAXPROCS=%d  pool(%d): %12.0f delivered/s (%.1f ev/service)  per-session: %12.0f delivered/s  pool/legacy %.2fx\n",
			cell.GoMaxProcs, cell.WriterPool.WriterPools, cell.WriterPool.DeliveredPerSec,
			cell.WriterPool.EventsPerPoolService, cell.PerSession.DeliveredPerSec, ratio)
	}
	out, err = json.MarshalIndent(scaling, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runPubPath compares the client→broker publish path per-event versus
// batched (no subscribers, so fan-out work cannot mask the difference)
// and prints the reports as a JSON array.
func runPubPath(pubs int) error {
	fmt.Fprintf(os.Stderr, "=== Publish path: %d publishers to one broker over loopback TCP, no subscribers ===\n", pubs)
	var reports []*globalmmcs.PublishPathReport
	for _, batching := range []bool{false, true} {
		res, err := globalmmcs.RunPublishPath(globalmmcs.PublishPathOptions{
			Publishers: pubs,
			Batching:   batching,
		})
		if err != nil {
			return fmt.Errorf("pubpath: %w", err)
		}
		label := "per-event publish"
		if batching {
			label = "batched publish"
		}
		fmt.Fprintf(os.Stderr, "%-18s %12.0f events/s %10.1f MB/s\n", label, res.EventsPerSec, res.MBPerSec)
		reports = append(reports, res)
	}
	if len(reports) == 2 && reports[0].EventsPerSec > 0 {
		fmt.Fprintf(os.Stderr, "batched/per-event speedup: %.2fx\n",
			reports[1].EventsPerSec/reports[0].EventsPerSec)
	}
	out, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runFanout measures raw broker fan-out throughput in both routing
// modes, with the publishers unbatched and then batched (the
// WithPublishBatching client path), and prints the reports as a JSON
// array (the format of BENCH_broker.json).
func runFanout(subs, pubs, events int) error {
	fmt.Fprintf(os.Stderr, "=== Fan-out: %d subscribers x %d publishers x %d events over loopback TCP ===\n",
		subs, pubs, events)
	var reports []*globalmmcs.FanoutReport
	for _, mode := range []globalmmcs.BrokerMode{globalmmcs.BrokerClientServer, globalmmcs.BrokerPeerToPeer} {
		for _, batching := range []bool{false, true} {
			res, err := globalmmcs.RunFanout(globalmmcs.FanoutOptions{
				Mode:            mode,
				Subscribers:     subs,
				Publishers:      pubs,
				Events:          events,
				PublishBatching: batching,
			})
			if err != nil {
				return fmt.Errorf("fanout %s: %w", mode, err)
			}
			label := "per-event publish"
			if batching {
				label = "batched publish"
			}
			fmt.Fprintf(os.Stderr, "%-14s %-18s %12.0f events/s %10.1f MB/s  pub %12.0f events/s  delivered %d/%d\n",
				res.Mode, label, res.EventsPerSec, res.MBPerSec, res.PublishEventsPerSec, res.Delivered, res.Expected)
			reports = append(reports, res)
		}
	}
	out, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func runFig3(scale float64, outDir string) error {
	receivers := scaled(400, scale)
	packets := scaled(2000, scale)
	measured := min(12, receivers)
	fmt.Printf("=== Figure 3: %d receivers (%d measured), %d packets, 600 Kbps video ===\n",
		receivers, measured, packets)
	fmt.Println("paper: NaradaBrokering avg delay 80.76 ms, jitter 13.38 ms")
	fmt.Println("paper: JMF reflector   avg delay 229.23 ms, jitter 15.55 ms")

	for _, system := range []globalmmcs.BenchSystem{globalmmcs.BenchBroker, globalmmcs.BenchReflector} {
		res, err := globalmmcs.RunFig3(system, globalmmcs.Fig3Options{
			Receivers: receivers,
			Measured:  measured,
			Packets:   packets,
		})
		if err != nil {
			return fmt.Errorf("fig3 %s: %w", system, err)
		}
		fmt.Printf("%-18s avg delay %8.2f ms   avg jitter %6.2f ms   received %6d   lost %d   (%.1fs)\n",
			system, res.MeanDelayMs, res.MeanJitterMs, res.Received, res.Lost, res.Elapsed.Seconds())
		base := strings.ToLower(strings.ReplaceAll(system.String(), "-", ""))
		if err := dumpSeries(filepath.Join(outDir, "fig3_delay_"+base+".tsv"), res.Delay); err != nil {
			return err
		}
		if err := dumpSeries(filepath.Join(outDir, "fig3_jitter_"+base+".tsv"), res.Jitter); err != nil {
			return err
		}
	}
	fmt.Printf("series written to %s/fig3_*.tsv (packet-number vs milliseconds)\n", outDir)
	return nil
}

func runCapacity(kind globalmmcs.MediaKind, scale float64) error {
	var sweep []int
	var packets int
	if kind == globalmmcs.Audio {
		sweep = []int{250, 500, 750, 1000, 1250}
		packets = 400 // 8s of audio
		fmt.Println("=== Capacity: audio clients on one broker (paper claim: >1000 with good quality) ===")
	} else {
		sweep = []int{100, 200, 400, 500}
		packets = 600 // ~8s of video
		fmt.Println("=== Capacity: video clients on one broker (paper claim: >400 with good quality) ===")
	}
	fmt.Printf("quality gate: delay < %.0f ms, jitter < %.0f ms, loss < %.0f%%\n",
		globalmmcs.QualityMaxDelayMs, globalmmcs.QualityMaxJitterMs, globalmmcs.QualityMaxLoss*100)
	fmt.Printf("%8s %14s %14s %14s %10s %8s\n", "clients", "mean delay", "p99 delay", "mean jitter", "loss", "quality")
	for _, n := range sweep {
		clients := scaled(n, scale)
		res, err := globalmmcs.RunCapacity(globalmmcs.CapacityOptions{
			Kind:    kind,
			Clients: clients,
			Packets: scaled(packets, scale),
		})
		if err != nil {
			return fmt.Errorf("capacity %s/%d: %w", kind, clients, err)
		}
		quality := "GOOD"
		if !res.GoodQuality {
			quality = "degraded"
		}
		fmt.Printf("%8d %11.2f ms %11.2f ms %11.2f ms %9.2f%% %8s\n",
			res.Clients, res.MeanDelayMs, res.P99DelayMs, res.MeanJitterMs, res.LossRate*100, quality)
	}
	return nil
}

func dumpSeries(path string, s *globalmmcs.BenchSeries) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.WriteTSV(f); err != nil {
		return err
	}
	return f.Close()
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}
