// Command gmmcs-broker runs a standalone broker node of the messaging
// middleware. Nodes link into a distributed network with -peer.
//
// Usage:
//
//	gmmcs-broker -id b1 -listen tcp://127.0.0.1:9041
//	gmmcs-broker -id b2 -listen tcp://127.0.0.1:9042 -peer tcp://127.0.0.1:9041
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		id     = flag.String("id", "broker-1", "broker identity (unique per network)")
		listen = flag.String("listen", "tcp://127.0.0.1:9041", "comma-separated listen URLs")
		peers  = flag.String("peer", "", "comma-separated peer broker URLs to keep supervised mesh links to")
		meshID = flag.String("mesh-id", "", "federation mesh identity; brokers link only when mesh IDs match (empty matches anything)")
		mode   = flag.String("mode", "client-server", "routing mode: client-server or p2p")
		stats  = flag.Duration("stats", 30*time.Second, "stats print interval (0 = off)")
		depth  = flag.Int("queue-depth", 0, "per-session best-effort queue depth (0 = default 512)")
		shards = flag.Int("route-shards", 0, "routing-lock shard count (0 = default 16)")
		batch  = flag.Int("max-batch-bytes", 0, "per-session write batch bound (0 = default 256KiB)")
		flush  = flag.Duration("flush-interval", 0, "batch linger once a session queue idles (0 = flush immediately)")
		burst  = flag.Int("ingest-burst", 0, "events decoded and routed per ingest sweep (0 = default 256, 1 = event-at-a-time)")
		wpool  = flag.Int("writer-pool", 0, "shared writer pools draining session send queues (0 = GOMAXPROCS-derived default, negative = writer goroutine per session)")
		pprofA = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
		flood  = flag.Bool("mesh-flood", false, "flood every advertising peer link instead of routed spanning-tree forwarding")
		credit = flag.Int("peer-credit-window", 0, "best-effort events in flight per peer link before sender-side shedding (0 = default queue-depth/2, negative = off)")

		record         = flag.String("record", "", "comma-separated topic patterns to record to durable topic logs for replay")
		recordDir      = flag.String("record-dir", "", "topic log root directory (empty = per-broker default under the OS temp dir)")
		recordSegBytes = flag.Int64("record-segment-bytes", 0, "topic log segment size before roll (0 = default 4MiB)")
		recordMaxSegs  = flag.Int("record-max-segments", 0, "retained segments per topic log before reaping (0 = unbounded)")
		recordMaxBytes = flag.Int64("record-max-bytes", 0, "retained bytes per topic log before reaping (0 = unbounded)")

		linger       = flag.Duration("session-linger", 0, "park dead client sessions this long awaiting a resume from a reconnecting client (0 = off)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful drain bound on SIGTERM/SIGINT: wait this long for clients to ack in-flight reliable traffic after GOAWAY (0 = stop immediately)")
	)
	flag.Parse()

	if *pprofA != "" {
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofA, nil))
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofA)
	}

	m := globalmmcs.BrokerClientServer
	if *mode == "p2p" {
		m = globalmmcs.BrokerPeerToPeer
	}
	b := globalmmcs.NewBrokerWithConfig(*id, m, globalmmcs.BrokerConfig{
		QueueDepth:         *depth,
		RouteShards:        *shards,
		MaxBatchBytes:      *batch,
		FlushInterval:      *flush,
		IngestBurst:        *burst,
		WriterPoolSize:     *wpool,
		MeshID:             *meshID,
		MeshFlood:          *flood,
		PeerCreditWindow:   *credit,
		RecordPatterns:     splitList(*record),
		RecordDir:          *recordDir,
		RecordSegmentBytes: *recordSegBytes,
		RecordMaxSegments:  *recordMaxSegs,
		RecordMaxBytes:     *recordMaxBytes,
		SessionLinger:      *linger,
	})
	defer b.Stop()

	for _, url := range splitList(*listen) {
		addr, err := b.Listen(url)
		if err != nil {
			return err
		}
		fmt.Printf("broker %s listening on %s (%s mode)\n", *id, addr, m)
	}
	for _, p := range splitList(*record) {
		fmt.Printf("recording %s\n", p)
	}
	// Peer links are supervised: each is dialed (and redialed with backoff
	// after drops) in the background, so a peer that is not up yet is not
	// fatal — the link converges when it appears.
	if peerURLs := splitList(*peers); len(peerURLs) > 0 {
		b.SetPeers(peerURLs...)
		for _, url := range peerURLs {
			fmt.Printf("supervising mesh link to %s\n", url)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *stats <= 0 {
		<-ctx.Done()
		return drain(b, *drainTimeout)
	}
	ticker := time.NewTicker(*stats)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return drain(b, *drainTimeout)
		case <-ticker.C:
			fmt.Printf("sessions=%d peers=%d\n", b.SessionCount(), b.PeerCount())
			for _, l := range b.PeerLinks() {
				fmt.Printf("link %s state=%s remote=%q redials=%d\n", l.URL, l.State, l.RemoteID, l.Redials)
			}
			fmt.Print(b.MetricsReport())
		}
	}
}

// drain winds the broker down gracefully, bounded by the -drain-timeout
// flag; the deferred Stop in run finishes the shutdown either way.
func drain(b *globalmmcs.Broker, timeout time.Duration) error {
	if timeout <= 0 {
		return nil
	}
	fmt.Printf("draining (timeout %s)\n", timeout)
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := b.Drain(ctx); err != nil {
		fmt.Printf("drain: %v\n", err)
	} else {
		fmt.Println("drained")
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
