// Command gmmcs-server runs a complete Global-MMCS node: broker, XGSP
// session and web servers, directory, SIP and H.323 gateways, RTSP
// streaming and IM services.
//
// Usage:
//
//	gmmcs-server -web 127.0.0.1:8070 -broker tcp://127.0.0.1:9040
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/globalmmcs/globalmmcs/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		webAddr   = flag.String("web", "127.0.0.1:8070", "XGSP web server HTTP address")
		brokerURL = flag.String("broker", "tcp://127.0.0.1:9040", "broker listen URL (tcp:// or udp://)")
		domain    = flag.String("domain", "mmcs.local", "SIP domain")
		noSIP     = flag.Bool("no-sip", false, "disable the SIP servers")
		noH323    = flag.Bool("no-h323", false, "disable the H.323 servers")
		noRTSP    = flag.Bool("no-rtsp", false, "disable the streaming server")
		noIM      = flag.Bool("no-im", false, "disable the IM service")
	)
	flag.Parse()

	srv, err := core.Start(core.Config{
		BrokerListenURLs: []string{*brokerURL},
		WebAddr:          *webAddr,
		Domain:           *domain,
		DisableSIP:       *noSIP,
		DisableH323:      *noH323,
		DisableRTSP:      *noRTSP,
		DisableIM:        *noIM,
	})
	if err != nil {
		return err
	}
	defer srv.Stop()

	fmt.Printf("Global-MMCS node up\n")
	fmt.Printf("  web (SOAP):   %s/ws\n", srv.WebAddr())
	fmt.Printf("  broker:       %s\n", *brokerURL)
	if srv.SIP != nil {
		fmt.Printf("  sip:          %s (domain %s)\n", srv.SIP.Addr(), *domain)
	}
	if srv.Gatekeeper != nil {
		fmt.Printf("  h323 ras:     %s\n", srv.Gatekeeper.Addr())
		fmt.Printf("  h323 signal:  %s\n", srv.H323Gateway.Addr())
	}
	if srv.RTSP != nil {
		fmt.Printf("  rtsp:         %s\n", srv.RTSP.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
