// Command gmmcs-server runs a complete Global-MMCS node: broker, XGSP
// session and web servers, directory, SIP and H.323 gateways, RTSP
// streaming and IM services.
//
// Usage:
//
//	gmmcs-server -web 127.0.0.1:8070 -broker tcp://127.0.0.1:9040
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"syscall"
	"time"

	"github.com/globalmmcs/globalmmcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		webAddr   = flag.String("web", "127.0.0.1:8070", "XGSP web server HTTP address")
		brokerURL = flag.String("broker", "tcp://127.0.0.1:9040", "broker listen URL (tcp:// or udp://)")
		domain    = flag.String("domain", "mmcs.local", "SIP domain")
		batch     = flag.Int("max-batch-bytes", 0, "broker per-session write batch bound (0 = default 256KiB)")
		flush     = flag.Duration("flush-interval", 0, "broker batch linger once a session queue idles (0 = flush immediately)")
		noSIP     = flag.Bool("no-sip", false, "disable the SIP servers")
		noH323    = flag.Bool("no-h323", false, "disable the H.323 servers")
		noRTSP    = flag.Bool("no-rtsp", false, "disable the streaming server")
		noIM      = flag.Bool("no-im", false, "disable the IM service")

		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful drain bound on SIGTERM/SIGINT: wait this long for broker clients to ack in-flight reliable traffic after GOAWAY (0 = stop immediately)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := []globalmmcs.Option{
		globalmmcs.WithWebAddr(*webAddr),
		globalmmcs.WithBrokerListen(*brokerURL),
		globalmmcs.WithDomain(*domain),
		globalmmcs.WithBrokerBatching(*batch, *flush),
	}
	if *noSIP {
		opts = append(opts, globalmmcs.WithoutSIP())
	}
	if *noH323 {
		opts = append(opts, globalmmcs.WithoutH323())
	}
	if *noRTSP {
		opts = append(opts, globalmmcs.WithoutRTSP())
	}
	if *noIM {
		opts = append(opts, globalmmcs.WithoutIM())
	}

	srv, err := globalmmcs.Start(ctx, opts...)
	if err != nil {
		return err
	}
	defer srv.Stop()
	readyCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.WaitReady(readyCtx); err != nil {
		return err
	}

	fmt.Printf("Global-MMCS node up\n")
	fmt.Printf("  web (SOAP):   %s/ws\n", srv.WebAddr())
	fmt.Printf("  broker:       %s\n", *brokerURL)
	if addr := srv.SIPAddr(); addr != "" {
		fmt.Printf("  sip:          %s (domain %s)\n", addr, srv.SIPDomain())
	}
	if addr := srv.GatekeeperAddr(); addr != "" {
		fmt.Printf("  h323 ras:     %s\n", addr)
		fmt.Printf("  h323 signal:  %s\n", srv.H323GatewayAddr())
	}
	if addr := srv.RTSPAddr(); addr != "" {
		fmt.Printf("  rtsp:         %s\n", addr)
	}

	<-ctx.Done()
	if *drainTimeout > 0 {
		fmt.Printf("draining (timeout %s)\n", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(drainCtx); err != nil {
			fmt.Printf("drain: %v\n", err)
		}
	}
	fmt.Println("shutting down")
	return nil
}
