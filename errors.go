package globalmmcs

import (
	"context"
	"errors"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/core"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// Sentinel errors of the public API. Every error returned by a Server,
// Client or Session method wraps one of these (or a context error), so
// callers classify failures with errors.Is instead of string matching:
//
//	if _, err := client.Join(ctx, id, "desk"); errors.Is(err, globalmmcs.ErrSessionNotFound) {
//	    ...
//	}
var (
	// ErrSessionNotFound reports an operation on an unknown session id.
	ErrSessionNotFound = errors.New("globalmmcs: session not found")
	// ErrNotParticipant reports an operation on a user who is not a
	// member of the (existing) session, e.g. leaving twice.
	ErrNotParticipant = errors.New("globalmmcs: user not in session")
	// ErrNotConnected reports an operation on a closed client.
	ErrNotConnected = errors.New("globalmmcs: client not connected")
	// ErrServerStopped reports an operation on a stopped server.
	ErrServerStopped = errors.New("globalmmcs: server stopped")
	// ErrTimeout reports a request the session server did not answer in
	// time. A context deadline expiring surfaces as ErrTimeout too (and
	// still matches context.DeadlineExceeded).
	ErrTimeout = errors.New("globalmmcs: request timed out")
	// ErrPermissionDenied reports an operation the session server
	// refused (e.g. terminating a session someone else created).
	ErrPermissionDenied = errors.New("globalmmcs: permission denied")
	// ErrFloorBusy reports a floor request while another participant
	// holds the floor.
	ErrFloorBusy = errors.New("globalmmcs: floor busy")
	// ErrSessionNotActive reports a join on a scheduled session outside
	// its active window.
	ErrSessionNotActive = errors.New("globalmmcs: session not active")
	// ErrInvalidRequest reports a request the session server rejected as
	// malformed.
	ErrInvalidRequest = errors.New("globalmmcs: invalid request")
	// ErrConflict reports an operation conflicting with current state
	// (e.g. releasing a floor the user does not hold).
	ErrConflict = errors.New("globalmmcs: conflict")
	// ErrNoSuchMedia reports a media operation on a channel kind the
	// session does not carry.
	ErrNoSuchMedia = errors.New("globalmmcs: session has no such media channel")
	// ErrStreamClosed reports a Recv on a Stream that was closed (and
	// whose buffered events are exhausted).
	ErrStreamClosed = errors.New("globalmmcs: stream closed")
	// ErrPublisherClosed reports a Publish on a closed Publisher.
	ErrPublisherClosed = errors.New("globalmmcs: publisher closed")
	// ErrConnLost reports an operation that raced a broker-connection
	// loss. Unlike ErrNotConnected it is transient: a reconnect-enabled
	// client recovers the link and the operation can be retried.
	ErrConnLost = errors.New("globalmmcs: broker connection lost")
)

// taggedErr pairs a public sentinel with the underlying cause so both
// match under errors.Is.
type taggedErr struct {
	sentinel error
	cause    error
}

func (e *taggedErr) Error() string { return e.sentinel.Error() + ": " + e.cause.Error() }

func (e *taggedErr) Unwrap() []error { return []error{e.sentinel, e.cause} }

func tag(sentinel, cause error) error { return &taggedErr{sentinel: sentinel, cause: cause} }

// wrapErr translates internal-layer errors into the public taxonomy.
// Context cancellation passes through untagged: a caller-initiated
// cancel is not a fault of the system.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	var se *xgsp.StatusError
	if errors.As(err, &se) {
		switch se.Status {
		case xgsp.StatusNotFound:
			return tag(ErrSessionNotFound, err)
		case xgsp.StatusNotMember:
			return tag(ErrNotParticipant, err)
		case xgsp.StatusDenied:
			return tag(ErrPermissionDenied, err)
		case xgsp.StatusBadRequest:
			return tag(ErrInvalidRequest, err)
		case xgsp.StatusConflict:
			return tag(ErrConflict, err)
		case xgsp.StatusFloorBusy:
			return tag(ErrFloorBusy, err)
		case xgsp.StatusNotScheduled:
			return tag(ErrSessionNotActive, err)
		}
		return err
	}
	switch {
	case errors.Is(err, context.Canceled):
		return err
	case errors.Is(err, xgsp.ErrTimeout),
		errors.Is(err, broker.ErrFenceTimeout),
		errors.Is(err, context.DeadlineExceeded):
		return tag(ErrTimeout, err)
	case errors.Is(err, broker.ErrConnLost):
		return tag(ErrConnLost, err)
	case errors.Is(err, xgsp.ErrClosed), errors.Is(err, broker.ErrClientClosed):
		return tag(ErrNotConnected, err)
	case errors.Is(err, broker.ErrPublisherClosed):
		return tag(ErrPublisherClosed, err)
	case errors.Is(err, core.ErrStopped), errors.Is(err, broker.ErrBrokerStopped):
		return tag(ErrServerStopped, err)
	case errors.Is(err, core.ErrSessionNotFound):
		return tag(ErrSessionNotFound, err)
	}
	return err
}
