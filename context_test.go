package globalmmcs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestJoinHonorsCancellation wedges the session server so a Join blocks
// with no response, then cancels the caller's context and asserts the
// call returns promptly with the cancellation instead of hanging until
// the request timeout.
func TestJoinHonorsCancellation(t *testing.T) {
	srv, err := Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	alice, err := srv.Client(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	session, err := alice.CreateSession(context.Background(), "doomed")
	if err != nil {
		t.Fatal(err)
	}

	// Stop the XGSP session server: requests now publish fine but no
	// response ever comes back, so Join blocks.
	srv.core.XGSP.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- session.Join(ctx, "terminal") }()
	time.Sleep(50 * time.Millisecond) // let the request get in flight
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("join returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("join did not unblock on cancellation")
	}
}

// TestStartHonorsCancelledContext asserts Start fails fast under an
// already-cancelled context and leaves nothing running.
func TestStartHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Start(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("start = %v, want context.Canceled", err)
	}
}
