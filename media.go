package globalmmcs

import (
	"context"
	"encoding/binary"
	"time"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/core"
	"github.com/globalmmcs/globalmmcs/internal/event"
	"github.com/globalmmcs/globalmmcs/internal/media"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
	"github.com/globalmmcs/globalmmcs/internal/rtp"
)

// MediaKind enumerates a session's media channel kinds.
type MediaKind string

// Media channel kinds.
const (
	Audio   MediaKind = "audio"
	Video   MediaKind = "video"
	Chat    MediaKind = "chat"
	Control MediaKind = "control"
)

// MediaStream describes one media channel of a session.
type MediaStream struct {
	// Kind is the channel kind (Audio, Video, Chat, Control).
	Kind MediaKind
	// Codec names the negotiated codec (e.g. "PCMU", "H261").
	Codec string
	// ClockRate is the RTP timestamp rate.
	ClockRate int
	// Topic is the broker topic carrying the channel.
	Topic string
}

// RTPPacket is a parsed RTP packet.
type RTPPacket struct {
	PayloadType    uint8
	SequenceNumber uint16
	Timestamp      uint32
	SSRC           uint32
	Marker         bool
	Payload        []byte
}

// ParseRTP parses RTP wire bytes.
func ParseRTP(b []byte) (*RTPPacket, error) {
	var p rtp.Packet
	if err := p.Unmarshal(b); err != nil {
		return nil, err
	}
	return &RTPPacket{
		PayloadType:    p.PayloadType,
		SequenceNumber: p.SequenceNumber,
		Timestamp:      p.Timestamp,
		SSRC:           p.SSRC,
		Marker:         p.Marker,
		Payload:        p.Payload,
	}, nil
}

// MediaPacket is one media event received from a session channel.
type MediaPacket struct {
	e *event.Event
}

// Payload returns the raw RTP wire bytes.
func (p *MediaPacket) Payload() []byte { return p.e.Payload }

// SentAt returns the wall-clock instant the sender published the packet,
// used for one-way delay measurement.
func (p *MediaPacket) SentAt() time.Time { return time.Unix(0, p.e.Timestamp) }

// RTP parses the payload as an RTP packet.
func (p *MediaPacket) RTP() (*RTPPacket, error) { return ParseRTP(p.e.Payload) }

// Clone returns a deep copy of the packet whose payload no longer
// aliases the broker's receive buffer. Call it before retaining packets
// indefinitely (an application-side jitter or replay buffer): a decoded
// packet otherwise pins the whole receive chunk (up to 256 KiB) it was
// parsed from.
func (p *MediaPacket) Clone() *MediaPacket { return &MediaPacket{e: p.e.Clone()} }

// defaultMediaBuffer is the delivery buffer of media subscriptions and
// raw event streams absent a WithBuffer option.
const defaultMediaBuffer = 256

// MediaSubscription is a Stream of one session channel's media packets,
// returned by Session.Subscribe. The default QoS drops the oldest
// buffered packet when the consumer lags, matching the broker's
// best-effort media lane; tune with WithBuffer, WithDropPolicy,
// WithConflation (keyed by SSRC) and WithLagNotify.
type MediaSubscription = Stream[*MediaPacket]

// mediaConflationKey keys media conflation by the RTP SSRC, read
// directly from the wire header so the hot path needs no full parse. A
// WithConflationKey option overrides it per stream. The key is a bare
// uint64 so the default conflating path stores it unboxed — no
// per-packet allocation, unlike an `any`-keyed pending set.
func mediaConflationKey(p *MediaPacket) (uint64, bool) {
	pl := p.e.Payload
	if p.e.Kind != event.KindRTP || len(pl) < rtp.HeaderLen {
		return 0, false
	}
	return uint64(binary.BigEndian.Uint32(pl[8:12])), true
}

func newMediaSubscription(sub *broker.Subscription, reg *metrics.Registry, name string, opts []StreamOption) *MediaSubscription {
	return newStream(sub, reg, name, defaultMediaBuffer, func(e *event.Event) (*MediaPacket, bool) {
		return &MediaPacket{e: e}, true
	}, mediaConflationKey, opts)
}

// MediaSender paces a media source onto one session channel in real
// time.
type MediaSender struct {
	s *media.Sender
}

func newMediaSender(c *core.Client, stream MediaStream) *MediaSender {
	return &MediaSender{s: media.NewSender(c.BC, stream.Topic)}
}

// SendAudio streams packets from src until count packets are sent or
// ctx is cancelled. It returns the number sent.
func (m *MediaSender) SendAudio(ctx context.Context, src *AudioSource, packets int) (int, error) {
	n, err := m.s.SendAudio(src.src, packets, ctx.Done())
	return n, wrapErr(err)
}

// SendVideo streams frames from src until count packets are sent or ctx
// is cancelled. It returns the number sent.
func (m *MediaSender) SendVideo(ctx context.Context, src *VideoSource, packets int) (int, error) {
	n, err := m.s.SendVideo(src.src, packets, ctx.Done())
	return n, wrapErr(err)
}

// AudioConfig shapes a synthetic audio stream. The zero value is a
// 64 Kbps G.711-style stream at 20 ms packetization.
type AudioConfig struct {
	// BitrateBps is the codec rate. Default 64_000.
	BitrateBps int
	// FrameMillis is the packetization interval. Default 20.
	FrameMillis int
	// SSRC identifies the stream.
	SSRC uint32
}

// AudioSource deterministically generates a G.711-style audio stream.
// Not safe for concurrent use.
type AudioSource struct {
	src *media.AudioSource
}

// NewAudioSource creates an audio source.
func NewAudioSource(cfg AudioConfig) *AudioSource {
	return &AudioSource{src: media.NewAudioSource(media.AudioConfig{
		BitrateBps:  cfg.BitrateBps,
		FrameMillis: cfg.FrameMillis,
		SSRC:        cfg.SSRC,
	})}
}

// NextPacket returns the wire bytes of the next audio packet.
func (a *AudioSource) NextPacket() ([]byte, error) {
	return a.src.NextPacket().Marshal()
}

// VideoConfig shapes a synthetic video stream. The zero value is the
// paper's 600 Kbps / 25 fps test stream.
type VideoConfig struct {
	// BitrateBps is the target bitrate. Default 600_000.
	BitrateBps int
	// FPS is the frame rate. Default 25.
	FPS int
	// MTU is the maximum RTP payload per packet. Default 1200.
	MTU int
	// IFrameInterval is the GOP length. Default 12.
	IFrameInterval int
	// SSRC identifies the stream.
	SSRC uint32
	// Seed drives deterministic frame-size variation. Default 1.
	Seed uint64
}

// VideoSource deterministically generates the RTP packets of a synthetic
// video stream. Not safe for concurrent use.
type VideoSource struct {
	src *media.VideoSource
}

// NewVideoSource creates a video source.
func NewVideoSource(cfg VideoConfig) *VideoSource {
	return &VideoSource{src: media.NewVideoSource(media.VideoConfig{
		BitrateBps:     cfg.BitrateBps,
		FPS:            cfg.FPS,
		MTU:            cfg.MTU,
		IFrameInterval: cfg.IFrameInterval,
		SSRC:           cfg.SSRC,
		Seed:           cfg.Seed,
	})}
}

// MediaStats is a point-in-time summary of a receiver.
type MediaStats struct {
	Received    uint64
	Bytes       uint64
	Corrupted   uint64
	Lost        uint64
	LossRate    float64
	MeanDelayMs float64
	MaxDelayMs  float64
	JitterMs    float64
}

// MediaReceiver consumes media packets and accumulates one-way delay,
// RFC 3550 jitter and loss statistics — what Figure 3 of the paper
// plots.
type MediaReceiver struct {
	r *media.Receiver
}

// NewMediaReceiver creates a measuring receiver for a channel kind
// (Audio or Video select the matching RTP clock rate).
func NewMediaReceiver(kind MediaKind) *MediaReceiver {
	return NewReorderingMediaReceiver(kind, 0)
}

// NewReorderingMediaReceiver creates a measuring receiver that first
// re-sequences out-of-order packets through a playout jitter buffer of
// the given depth (0 disables reordering). Parked packets detach from
// the broker's receive buffers, so a lossy stream never pins receive
// chunks while gaps wait to fill. Call Flush when the stream ends to
// account packets still parked behind gaps that will never fill.
func NewReorderingMediaReceiver(kind MediaKind, depth int) *MediaReceiver {
	clockRate := rtp.AudioClockRate
	if kind == Video {
		clockRate = rtp.VideoClockRate
	}
	return &MediaReceiver{r: media.NewReceiver(media.ReceiverConfig{
		ClockRate:    clockRate,
		ReorderDepth: depth,
	})}
}

// Handle processes one received packet.
func (r *MediaReceiver) Handle(p *MediaPacket) { r.r.HandleEvent(p.e) }

// Flush drains any packets parked in the reorder buffer into the
// statistics. No-op for receivers without reordering.
func (r *MediaReceiver) Flush() { r.r.Flush() }

// Drain consumes packets from sub until the subscription closes or ctx
// is cancelled, then flushes the reorder buffer.
func (r *MediaReceiver) Drain(ctx context.Context, sub *MediaSubscription) {
	defer r.Flush()
	for {
		p, err := sub.Recv(ctx)
		if err != nil {
			return
		}
		r.Handle(p)
	}
}

// Stats returns the receiver's statistics.
func (r *MediaReceiver) Stats() MediaStats {
	s := r.r.Snapshot()
	return MediaStats{
		Received:    s.Received,
		Bytes:       s.Bytes,
		Corrupted:   s.Corrupted,
		Lost:        s.Lost,
		LossRate:    s.LossRate,
		MeanDelayMs: s.MeanDelayMs,
		MaxDelayMs:  s.MaxDelayMs,
		JitterMs:    s.JitterMs,
	}
}
