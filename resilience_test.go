// Resilience-plane facade tests: everything here imports the public
// globalmmcs package only and runs over real TCP listeners, proving the
// resume/reconnect/drain machinery is reachable without touching
// internal packages.
package globalmmcs_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	globalmmcs "github.com/globalmmcs/globalmmcs"
)

func startResilientBroker(t *testing.T, id string) (*globalmmcs.Broker, string) {
	t.Helper()
	b := globalmmcs.NewBrokerWithConfig(id, 0, globalmmcs.BrokerConfig{
		SessionLinger: time.Minute,
	})
	t.Cleanup(b.Stop)
	addr, err := b.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return b, addr
}

func recvPayload(t *testing.T, sub *globalmmcs.BrokerSubscription) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e, err := sub.Recv(ctx)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return e.Payload
}

// TestDialBrokerRoundtrip: the plain (non-reconnecting) facade client
// can subscribe and publish over TCP, and closing it surfaces the
// ErrNotConnected taxonomy on later calls.
func TestDialBrokerRoundtrip(t *testing.T) {
	_, addr := startResilientBroker(t, "fac-rt")
	ctx := context.Background()

	sub1, err := globalmmcs.DialBroker("fac-sub", []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer sub1.Close()
	pub, err := globalmmcs.DialBroker("fac-pub", []string{addr})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	sub, err := sub1.Subscribe(ctx, "/fac/*", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.PublishReliable("/fac/a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := recvPayload(t, sub); string(got) != "hello" {
		t.Fatalf("payload = %q, want hello", got)
	}

	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("/fac/a", nil); !errors.Is(err, globalmmcs.ErrNotConnected) {
		t.Fatalf("publish after close = %v, want ErrNotConnected", err)
	}
}

// TestDialBrokerDrainFailover: draining a broker hands a
// reconnect-enabled client over to the next URL in its rotation, with
// the subscription surviving transparently.
func TestDialBrokerDrainFailover(t *testing.T) {
	b1, addr1 := startResilientBroker(t, "fac-d1")
	b2, addr2 := startResilientBroker(t, "fac-d2")
	ctx := context.Background()

	var mu sync.Mutex
	var states []globalmmcs.ConnState
	c, err := globalmmcs.DialBroker("fac-mover", []string{addr1, addr2},
		globalmmcs.WithReconnect(),
		globalmmcs.WithConnStateFunc(func(s globalmmcs.ConnState) {
			mu.Lock()
			states = append(states, s)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sub, err := c.Subscribe(ctx, "/fac/move", 16)
	if err != nil {
		t.Fatal(err)
	}
	if b1.SessionCount() != 1 {
		t.Fatalf("client not on b1 (sessions=%d)", b1.SessionCount())
	}

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := b1.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for b2.SessionCount() != 1 || c.ConnState() != globalmmcs.StateConnected {
		if time.Now().After(deadline) {
			t.Fatalf("client never landed on b2 (b2 sessions=%d, state=%v)",
				b2.SessionCount(), c.ConnState())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The subscription moved with the client: a publisher on b2 reaches it.
	pub, err := globalmmcs.DialBroker("fac-pub2", []string{addr2})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.PublishReliable("/fac/move", []byte("post-drain")); err != nil {
		t.Fatal(err)
	}
	if got := recvPayload(t, sub); string(got) != "post-drain" {
		t.Fatalf("payload = %q, want post-drain", got)
	}

	mu.Lock()
	saw := fmt.Sprint(states)
	mu.Unlock()
	for _, want := range []globalmmcs.ConnState{globalmmcs.StateConnected, globalmmcs.StateReconnecting} {
		found := false
		mu.Lock()
		for _, s := range states {
			if s == want {
				found = true
			}
		}
		mu.Unlock()
		if !found {
			t.Fatalf("state callback never saw %v (saw %s)", want, saw)
		}
	}
}

// TestDialBrokerConnLost: with buffering disabled, a reconnect-enabled
// client whose brokers are all gone fails fast with the transient
// ErrConnLost — distinct from the terminal ErrNotConnected after Close.
func TestDialBrokerConnLost(t *testing.T) {
	b, addr := startResilientBroker(t, "fac-lost")
	c, err := globalmmcs.DialBroker("fac-lost-c", []string{addr},
		globalmmcs.WithReconnect(), globalmmcs.WithPublishBuffer(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	b.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for c.ConnState() != globalmmcs.StateReconnecting {
		if time.Now().After(deadline) {
			t.Fatalf("state = %v, want StateReconnecting", c.ConnState())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Publish("/fac/x", nil); !errors.Is(err, globalmmcs.ErrConnLost) {
		t.Fatalf("publish during outage = %v, want ErrConnLost", err)
	}
	if _, err := c.Subscribe(context.Background(), "/fac/x", 8); !errors.Is(err, globalmmcs.ErrConnLost) {
		t.Fatalf("subscribe during outage = %v, want ErrConnLost", err)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.ConnState(); got != globalmmcs.StateClosed {
		t.Fatalf("state after close = %v, want StateClosed", got)
	}
	if err := c.Publish("/fac/x", nil); !errors.Is(err, globalmmcs.ErrNotConnected) {
		t.Fatalf("publish after close = %v, want ErrNotConnected", err)
	}
}
