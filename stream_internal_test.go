package globalmmcs

import "testing"

// TestConflationUint64KeyUnboxed: the built-in SSRC conflation path
// stores its uint64 keys unboxed — admitting (and merging) packets
// allocates nothing, unlike an `any`-keyed pending set which boxes the
// key per admitted packet.
func TestConflationUint64KeyUnboxed(t *testing.T) {
	p := newPendingSet[int, uint64](func(v int) (uint64, bool) {
		return 1_000_000_007, true // large enough to defeat small-int interning
	})
	p.admit(1) // key now present: subsequent admits merge in place
	allocs := testing.AllocsPerRun(1000, func() {
		p.admit(2)
	})
	if allocs != 0 {
		t.Fatalf("uint64-keyed conflation allocated %.1f per merged packet, want 0", allocs)
	}
}

// TestConflationAnyKeyStillWorks: the custom-key path (K = any) keeps
// full generality — any comparable key type, nil exempting an event.
func TestConflationAnyKeyStillWorks(t *testing.T) {
	type update struct {
		user string
		seq  int
	}
	p := newPendingSet[update, any](func(v update) (any, bool) {
		if v.user == "" {
			return nil, false
		}
		return v.user, true
	})
	if keyed, _ := p.admit(update{user: "", seq: 1}); keyed {
		t.Fatal("empty key should bypass conflation")
	}
	p.admit(update{user: "a", seq: 1})
	p.admit(update{user: "b", seq: 1})
	if keyed, merged := p.admit(update{user: "a", seq: 2}); !keyed || !merged {
		t.Fatal("same-key admit should merge")
	}
	if p.head().seq != 2 {
		t.Fatalf("merged head seq = %d, want the superseding 2", p.head().seq)
	}
	p.pop()
	if p.head().user != "b" || p.empty() {
		t.Fatal("arrival order of keys not preserved")
	}
}
