package globalmmcs

import (
	"time"

	"github.com/globalmmcs/globalmmcs/internal/core"
	"github.com/globalmmcs/globalmmcs/internal/metrics"
)

// Option configures a Server at Start. The zero configuration (no
// options) starts every service on loopback with ephemeral ports, so
// Start(ctx) alone always yields a working node.
type Option func(*core.Config)

// WithBrokerID names this node's broker in a multi-broker network.
func WithBrokerID(id string) Option {
	return func(c *core.Config) { c.BrokerID = id }
}

// WithBrokerListen adds transport URLs the broker accepts remote clients
// and peer brokers on (e.g. "tcp://127.0.0.1:9040").
func WithBrokerListen(urls ...string) Option {
	return func(c *core.Config) { c.BrokerListenURLs = append(c.BrokerListenURLs, urls...) }
}

// WithBrokerBatching tunes the broker data path's outbound batching:
// maxBatchBytes bounds the encoded bytes a session writer aggregates
// before forcing a vectored flush (0 keeps the 256 KiB default), and
// flushInterval is how long a writer lingers over a non-empty batch once
// its queue idles, waiting for more traffic to coalesce with (0, the
// default, flushes immediately on idle — batching then costs no
// latency). Reliable signalling always flushes immediately regardless.
func WithBrokerBatching(maxBatchBytes int, flushInterval time.Duration) Option {
	return func(c *core.Config) {
		c.BrokerMaxBatchBytes = maxBatchBytes
		c.BrokerFlushInterval = flushInterval
	}
}

// WithIngestBurst bounds how many events the broker decodes and routes
// per ingest sweep on burst-capable connections (0 keeps the default of
// 256). Within a burst, publish targets are resolved once per topic and
// each subscriber session is locked and woken once, which is what keeps
// sustained ingest cheap at wide fan-out. 1 degenerates the data path
// to event-at-a-time ingest — an ablation knob.
func WithIngestBurst(n int) Option {
	return func(c *core.Config) { c.BrokerIngestBurst = n }
}

// WithWriterPool sets how many shared writer pools drain the broker's
// session send queues (0 keeps the GOMAXPROCS-derived default). The
// pools replace the writer-goroutine-per-session model with O(cores)
// writers, which is what lets egress scale with cores at high session
// counts; a negative width restores the legacy per-session plane — an
// ablation knob.
func WithWriterPool(n int) Option {
	return func(c *core.Config) { c.BrokerWriterPool = n }
}

// WithPeers declares peer broker URLs this node keeps supervised
// federation-mesh links to. Each peer is dialed at start and redialed
// with exponential backoff after drops or partitions (detected via
// peer heartbeats); subscription advertisements re-sync automatically
// when a link comes back. Repeated options accumulate.
func WithPeers(urls ...string) Option {
	return func(c *core.Config) { c.BrokerPeers = append(c.BrokerPeers, urls...) }
}

// WithMeshID scopes this node's peer links to one federation mesh:
// brokers only link when their mesh IDs match (empty matches anything).
func WithMeshID(id string) Option {
	return func(c *core.Config) { c.BrokerMeshID = id }
}

// WithRecording turns on the broker's durable topic log for the given
// topic patterns: every routed event matching a pattern is appended to
// a segmented, CRC-framed on-disk log, and late joiners can replay
// history through Events/Subscribe with WithReplayFrom or
// WithReplayFromEarliest before switching to live delivery. dir is the
// log root ("" keeps the default under the OS temp dir). Patterns may
// use the usual wildcards ("/chat/#"); replay subscriptions must name
// a recorded pattern exactly. Repeated options accumulate patterns.
func WithRecording(dir string, patterns ...string) Option {
	return func(c *core.Config) {
		if dir != "" {
			c.BrokerRecordDir = dir
		}
		c.BrokerRecordPatterns = append(c.BrokerRecordPatterns, patterns...)
	}
}

// WithRecordingRetention bounds each topic log's on-disk footprint:
// segmentBytes caps one segment before roll (0 keeps the 4 MiB
// default), and maxSegments/maxBytes cap a log's total retention —
// oldest segments are reaped past either bound, except segments an
// active replay cursor still reads (0 = unbounded).
func WithRecordingRetention(segmentBytes int64, maxSegments int, maxBytes int64) Option {
	return func(c *core.Config) {
		c.BrokerRecordSegmentBytes = segmentBytes
		c.BrokerRecordMaxSegments = maxSegments
		c.BrokerRecordMaxBytes = maxBytes
	}
}

// WithBrokerRouteShards sets how many independent locks the broker's
// subscription-routing state is sharded across (rounded up to a power of
// two; 0 keeps the default of 16). One shard degenerates to a single
// routing lock — useful for ablation.
func WithBrokerRouteShards(n int) Option {
	return func(c *core.Config) { c.BrokerRouteShards = n }
}

// WithDomain sets the SIP domain (default "mmcs.local").
func WithDomain(domain string) Option {
	return func(c *core.Config) { c.Domain = domain }
}

// WithWebAddr sets the XGSP web server's HTTP listen address (default
// loopback with an ephemeral port).
func WithWebAddr(addr string) Option {
	return func(c *core.Config) { c.WebAddr = addr }
}

// WithoutSIP disables the SIP registrar/proxy/gateway.
func WithoutSIP() Option {
	return func(c *core.Config) { c.DisableSIP = true }
}

// WithoutH323 disables the H.323 gatekeeper and gateway.
func WithoutH323() Option {
	return func(c *core.Config) { c.DisableH323 = true }
}

// WithoutRTSP disables the streaming server.
func WithoutRTSP() Option {
	return func(c *core.Config) { c.DisableRTSP = true }
}

// WithoutIM disables the chat/presence service.
func WithoutIM() Option {
	return func(c *core.Config) { c.DisableIM = true }
}

// Clock abstracts the time source driving schedulers and expiry logic,
// so tests can substitute a deterministic fake.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time after d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// WithClock substitutes the server's time source.
func WithClock(clk Clock) Option {
	return func(c *core.Config) { c.Clock = clk }
}

// Metrics is a registry of the server's counters, histograms and series.
type Metrics struct {
	reg *metrics.Registry
}

// NewMetrics creates an empty registry to hand to WithMetrics.
func NewMetrics() *Metrics { return &Metrics{reg: &metrics.Registry{}} }

// Report renders every registered instrument as text, sorted by name.
func (m *Metrics) Report() string { return m.reg.Report() }

// WithMetrics routes all server counters into m instead of a private
// registry.
func WithMetrics(m *Metrics) Option {
	return func(c *core.Config) { c.Metrics = m.reg }
}
