package globalmmcs

import (
	"context"
	"io"

	"github.com/globalmmcs/globalmmcs/internal/streaming"
)

// Player is a minimal RTSP client standing in for the Real and Windows
// Media players of the paper's §2.1: it DESCRIBEs a session stream,
// SETUPs tracks onto local UDP ports, PLAYs, and counts received RTP
// packets per track.
type Player struct {
	p *streaming.Player
}

// DialPlayer connects to an rtsp:// URL, typically Server.StreamURL.
func DialPlayer(url string) (*Player, error) {
	p, err := streaming.DialPlayer(url)
	if err != nil {
		return nil, err
	}
	return &Player{p: p}, nil
}

// Describe fetches the stream description and returns the advertised
// track ids by kind ("audio", "video").
func (p *Player) Describe() (map[string]int, error) { return p.p.Describe() }

// Setup prepares one track for reception on a fresh local UDP port.
func (p *Player) Setup(kind string, trackID int) (*PlayerTrack, error) {
	t, err := p.p.Setup(kind, trackID)
	if err != nil {
		return nil, err
	}
	return &PlayerTrack{t: t}, nil
}

// Play starts delivery on all set-up tracks.
func (p *Player) Play() error { return p.p.Play() }

// Pause suspends delivery.
func (p *Player) Pause() error { return p.p.Pause() }

// Teardown ends the RTSP session and closes all tracks.
func (p *Player) Teardown() error { return p.p.Teardown() }

// Close releases the player's sockets without an RTSP exchange.
func (p *Player) Close() { p.p.Close() }

// PlayerTrack is one receiving track of a Player.
type PlayerTrack struct {
	t *streaming.PlayerTrack
}

// Received returns the packets received so far.
func (t *PlayerTrack) Received() uint64 { return t.t.Received() }

// LastPayloadType returns the RTP payload type of the last packet.
func (t *PlayerTrack) LastPayloadType() uint8 { return t.t.LastPayloadType() }

// Archive records a session's media to a writer and replays it later —
// the paper's conference archiving service.
type Archive struct{}

// Record consumes packets from sub until the stream closes or ctx is
// cancelled, writing sequence-stamped, CRC-framed records to w (the
// broker's durable topic log format — see internal/topiclog). It
// returns the number of packets recorded. Each packet is encoded and
// written as it arrives — nothing is retained, so recording never pins
// the broker's receive buffers.
func (Archive) Record(ctx context.Context, w io.Writer, sub *MediaSubscription) (int, error) {
	count := 0
	for {
		p, err := sub.Recv(ctx)
		if err != nil {
			return count, nil
		}
		if err := streaming.WriteFrame(w, uint64(count+1), p.e); err != nil {
			return count, err
		}
		count++
	}
}

// Replay reads an archive and republishes it onto one media channel of
// target, so a session recorded earlier plays into a new one. With
// pace=true the original inter-packet gaps are reproduced; cancelling
// ctx stops the replay mid-archive. It returns the number of packets
// replayed.
func (Archive) Replay(ctx context.Context, r io.Reader, target *Session, kind MediaKind, pace bool) (int, error) {
	stream, ok := target.stream(kind)
	if !ok {
		return 0, tag(ErrNoSuchMedia, errMediaKind(kind))
	}
	var arch streaming.Archiver
	n, err := arch.Replay(ctx, r, target.c.BC, pace, func(string) string { return stream.Topic })
	return n, wrapErr(err)
}
