package globalmmcs

import (
	"context"
	"sync"

	"github.com/globalmmcs/globalmmcs/internal/broker"
	"github.com/globalmmcs/globalmmcs/internal/core"
	"github.com/globalmmcs/globalmmcs/internal/xgsp"
)

// Participant is one member of a session.
type Participant struct {
	// UserID identifies the user across all communities.
	UserID string
	// Terminal names the media endpoint the user attends with (a SIP
	// UA, an H.323 terminal, an RTSP player, a native client...).
	Terminal string
	// Community names the collaboration community the user comes from
	// ("" for native Global-MMCS clients; "sip", "h323", "admire",
	// "accessgrid" for gateway-joined users).
	Community string
}

// SessionDetails is a point-in-time description of a session.
type SessionDetails struct {
	ID           string
	Name         string
	Creator      string
	Community    string
	Active       bool
	Participants []Participant
	Media        []MediaStream
}

func detailsFromInfo(info *xgsp.SessionInfo) SessionDetails {
	d := SessionDetails{
		ID:        info.ID,
		Name:      info.Name,
		Creator:   info.Creator,
		Community: info.Community,
		Active:    info.Active,
	}
	for _, p := range info.Participants {
		d.Participants = append(d.Participants, Participant{
			UserID: p.UserID, Terminal: p.Terminal, Community: p.Community,
		})
	}
	for _, m := range info.Media {
		d.Media = append(d.Media, MediaStream{
			Kind:      MediaKind(m.Type),
			Codec:     m.Codec,
			ClockRate: m.ClockRate,
			Topic:     m.Topic,
		})
	}
	return d
}

// Session is a handle on one collaboration session, bound to the client
// that created or joined it. It caches the most recent description the
// session server returned; Refresh re-fetches it.
type Session struct {
	c *core.Client

	mu   sync.Mutex
	info *xgsp.SessionInfo
}

// ID returns the session id.
func (s *Session) ID() string { return s.snapshot().ID }

// Name returns the session name.
func (s *Session) Name() string { return s.snapshot().Name }

// Details returns the cached session description.
func (s *Session) Details() SessionDetails { return detailsFromInfo(s.snapshot()) }

// Media lists the session's media channels.
func (s *Session) Media() []MediaStream { return s.Details().Media }

// Participants lists the session's members as of the last refresh.
func (s *Session) Participants() []Participant { return s.Details().Participants }

func (s *Session) snapshot() *xgsp.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}

func (s *Session) update(info *xgsp.SessionInfo) {
	if info == nil {
		return
	}
	s.mu.Lock()
	s.info = info
	s.mu.Unlock()
}

// Refresh re-fetches the session description from the session server.
func (s *Session) Refresh(ctx context.Context) error {
	info, err := s.c.XGSP.Lookup(ctx, s.ID())
	if err != nil {
		return wrapErr(err)
	}
	if info == nil {
		return tag(ErrSessionNotFound, errSessionID(s.ID()))
	}
	s.update(info)
	return nil
}

// Join adds this client to the session with a logical terminal name.
func (s *Session) Join(ctx context.Context, terminal string) error {
	info, err := s.c.XGSP.Join(ctx, s.ID(), terminal, nil)
	if err != nil {
		return wrapErr(err)
	}
	s.update(info)
	return nil
}

// Leave removes this client from the session.
func (s *Session) Leave(ctx context.Context) error {
	return wrapErr(s.c.XGSP.Leave(ctx, s.ID()))
}

// Terminate ends the session; only its creator may terminate.
func (s *Session) Terminate(ctx context.Context, reason string) error {
	return wrapErr(s.c.XGSP.Terminate(ctx, s.ID(), reason))
}

// InviteUser asks the session server to notify another user of an
// invitation to this session.
func (s *Session) InviteUser(ctx context.Context, userID, message string) error {
	return wrapErr(s.c.XGSP.Invite(ctx, s.ID(), userID, message))
}

// RequestFloor asks for the floor on a media channel. ErrFloorBusy
// reports that another participant holds it.
func (s *Session) RequestFloor(ctx context.Context, kind MediaKind) error {
	return wrapErr(s.c.XGSP.RequestFloor(ctx, s.ID(), xgsp.MediaType(kind)))
}

// ReleaseFloor returns the floor on a media channel.
func (s *Session) ReleaseFloor(ctx context.Context, kind MediaKind) error {
	return wrapErr(s.c.XGSP.ReleaseFloor(ctx, s.ID(), xgsp.MediaType(kind)))
}

// Send posts a chat message into the session's room.
func (s *Session) Send(ctx context.Context, body string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return wrapErr(s.c.Chat.Send(s.ID(), body))
}

// Chat joins the session's chat room and streams its messages until
// the room is closed. Delivery QoS is set with StreamOptions.
func (s *Session) Chat(ctx context.Context, opts ...StreamOption) (*ChatRoom, error) {
	sub, err := s.c.Chat.JoinRoom(ctx, s.ID(), brokerDepth(streamBuffer(defaultChatBuffer, opts)))
	if err != nil {
		return nil, wrapErr(err)
	}
	return newChatRoom(sub, s.c.Metrics, s.streamName("chat"), opts), nil
}

// streamName builds the per-stream metrics identity
// "<user>.<label>.<session>" under which drop gauges register.
func (s *Session) streamName(label string) string {
	return s.c.UserID() + "." + label + "." + s.ID()
}

// Sender returns a paced sender publishing onto one of the session's
// media channels.
func (s *Session) Sender(kind MediaKind) (*MediaSender, error) {
	stream, ok := s.stream(kind)
	if !ok {
		return nil, tag(ErrNoSuchMedia, errMediaKind(kind))
	}
	return newMediaSender(s.c, stream), nil
}

// Subscribe streams the session's media packets on one channel kind.
// Delivery QoS — buffer depth, drop policy, conflation (keyed by SSRC
// by default), lag notification — is set with StreamOptions.
func (s *Session) Subscribe(ctx context.Context, kind MediaKind, opts ...StreamOption) (*MediaSubscription, error) {
	stream, ok := s.stream(kind)
	if !ok {
		return nil, tag(ErrNoSuchMedia, errMediaKind(kind))
	}
	sub, err := s.subscribeStream(ctx, stream.Topic, opts)
	if err != nil {
		return nil, wrapErr(err)
	}
	return newMediaSubscription(sub, s.c.Metrics, s.streamName("media."+string(kind)), opts), nil
}

// subscribeStream opens the broker subscription behind a stream,
// switching to a replay subscription when the options ask for one.
// Replay requires the node to record exactly the subscribed pattern
// (see WithRecording).
func (s *Session) subscribeStream(ctx context.Context, pattern string, opts []StreamOption) (*broker.Subscription, error) {
	cfg := resolveStreamConfig(defaultMediaBuffer, opts)
	if cfg.replay {
		return s.c.BC.SubscribeReplay(ctx, pattern, cfg.replayFrom, brokerDepth(cfg.buffer))
	}
	return s.c.BC.SubscribeContext(ctx, pattern, brokerDepth(cfg.buffer))
}

// Events streams every raw broker event published on this session's
// topics — media, chat and signalling alike: the paper's "every
// modality is an event on one substrate" view, exposed for gateways,
// archival tools and debugging. Delivery QoS is set with StreamOptions.
//
// With WithReplayFrom or WithReplayFromEarliest the stream first
// delivers the session's recorded history, then live events, exactly
// once across the handoff; the node must record exactly this session's
// topic pattern ("/xgsp/session/<id>/#" — see WithRecording), and
// Stream.CaughtUp signals when history is drained.
func (s *Session) Events(ctx context.Context, opts ...StreamOption) (*Stream[Event], error) {
	pattern := xgsp.SessionTopic(s.ID(), "#")
	sub, err := s.subscribeStream(ctx, pattern, opts)
	if err != nil {
		return nil, wrapErr(err)
	}
	return newStream(sub, s.c.Metrics, s.streamName("events"), defaultMediaBuffer, rawFromInternal, nil, opts), nil
}

func (s *Session) stream(kind MediaKind) (MediaStream, bool) {
	for _, m := range s.Details().Media {
		if m.Kind == kind {
			return m, true
		}
	}
	return MediaStream{}, false
}

type errMediaKind MediaKind

func (e errMediaKind) Error() string { return "no " + string(e) + " channel" }
